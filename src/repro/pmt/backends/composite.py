"""Composite PMT backend: several meters behind one interface.

The original toolkit lets an application hold one meter per device; in
practice instrumentation wants *one* ``read()`` per region covering all of
them (GPU + CPU on an NVML/RAPL platform, say).  The composite wraps any
set of PMT instances: its state's primary measurement is the sum of the
children's primaries, and every child measurement is re-exported with a
prefixed name for per-device analysis.

**Child ordering** is snapshotted at construction time from the insertion
order of the ``meters`` dict and never changes afterwards (``children``
exposes the snapshot).  Reads therefore hit the children in a fixed,
documented order — important because child reads are stateful (RAPL
unwrapping, ROCm polling integration) and a different order would produce
different power estimates.

**Failure isolation**: one failing child degrades only *its own*
measurements.  A child whose ``read()`` raises is re-exported at its last
known values flagged ``degraded`` and excluded from the primary sum, so
the composite keeps serving the healthy children instead of aborting the
whole read.  Only when every child fails (or a child fails before its
first successful read) does the composite raise.  Wrap the children in
:class:`~repro.pmt.backends.resilient.ResilientPMT` for the finer ladder
(retry, interpolation, stuck detection) — the composite's isolation is the
backstop for children that fail hard.
"""

from __future__ import annotations

from repro.errors import BackendError, SensorError
from repro.pmt.base import PMT
from repro.pmt.registry import register_backend
from repro.pmt.state import Measurement, State


@register_backend("composite")
class CompositePMT(PMT):
    """A meter aggregating several child meters.

    Parameters
    ----------
    meters:
        Named child meters, e.g. ``{"gpu0": nvml_meter, "cpu": rapl_meter}``.
        All children must share one clock (one node / one simulation).
        Child names must be non-empty and must not contain ``"."`` — the
        dot is the re-export separator, and a dotted child name could
        collide with another child's prefixed measurements (``"a"`` +
        ``"b.c"`` and ``"a.b"`` + ``"c"`` would both export ``"a.b.c"``).
    """

    def __init__(self, meters: dict[str, PMT]) -> None:
        if not meters:
            raise BackendError("composite meter needs at least one child")
        for name in meters:
            if not name:
                raise BackendError("composite child names must be non-empty")
            if "." in name:
                raise BackendError(
                    f"composite child name {name!r} contains '.', which "
                    "would make its prefixed measurement names ambiguous"
                )
            if name == "total":
                raise BackendError(
                    "composite child name 'total' collides with the "
                    "composite's primary measurement"
                )
        clocks = {id(m.clock) for m in meters.values()}
        if len(clocks) != 1:
            raise BackendError("composite children must share one clock")
        super().__init__(next(iter(meters.values())).clock)
        self._meters = dict(meters)
        # Iteration-order snapshot: reads always visit children in the
        # insertion order of the constructor dict.
        self._order: tuple[str, ...] = tuple(meters)
        self._last_child_state: dict[str, State] = {}
        #: Cumulative failed reads per child (fault observability).
        self.child_failures: dict[str, int] = {name: 0 for name in self._order}
        #: Children served from held values on the most recent read.
        self.degraded_children: tuple[str, ...] = ()

    @property
    def children(self) -> tuple[str, ...]:
        """Names of the child meters, in the snapshotted read order."""
        return self._order

    def measurement_names(self) -> tuple[str, ...] | None:
        names: list[str] = ["total"]
        for name in self._order:
            child_names = self._meters[name].measurement_names()
            if child_names is None:
                return None
            names.extend(f"{name}.{m}" for m in child_names)
        return tuple(names)

    def read_state(self) -> State:
        measurements: list[Measurement] = []
        total_joules = 0.0
        total_watts = 0.0
        degraded: list[str] = []
        for name in self._order:
            meter = self._meters[name]
            try:
                state = meter.read()
            except SensorError:
                self.child_failures[name] += 1
                held = self._last_child_state.get(name)
                if held is None:
                    raise
                degraded.append(name)
                # Flagged, not summed: the child's last known values stay
                # visible for analysis but cannot pollute the primary.
                for m in held.measurements:
                    measurements.append(
                        Measurement(
                            name=f"{name}.{m.name}",
                            joules=m.joules,
                            watts=m.watts,
                            quality="degraded",
                        )
                    )
                continue
            self._last_child_state[name] = state
            total_joules += state.joules
            total_watts += state.watts
            for m in state.measurements:
                measurements.append(
                    Measurement(
                        name=f"{name}.{m.name}",
                        joules=m.joules,
                        watts=m.watts,
                        quality=m.quality,
                    )
                )
        self.degraded_children = tuple(degraded)
        if len(degraded) == len(self._order):
            raise SensorError(
                "all composite children failed: " + ", ".join(self._order)
            )
        seen: dict[str, str] = {}
        for m in measurements:
            if m.name in seen:
                raise BackendError(
                    f"prefixed measurement name {m.name!r} exported by more "
                    "than one composite child"
                )
            seen[m.name] = m.name
        primary = Measurement(
            name="total",
            joules=total_joules,
            watts=total_watts,
            quality="degraded" if degraded else "ok",
        )
        return State(
            timestamp=self.clock.now,
            measurements=(primary, *measurements),
        )
