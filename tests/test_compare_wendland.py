"""Tests for the A/B comparison report and the Wendland C2 kernel."""

import numpy as np
import pytest

from repro.analysis.compare import (
    compare_runs,
    comparison_report,
    optimization_targets,
)
from repro.config import CSCS_A100, LUMI_G, SUBSONIC_TURBULENCE
from repro.errors import AnalysisError
from repro.experiments.runner import run_scaled_experiment
from repro.sph import Simulation
from repro.sph.initial_conditions import make_turbulence
from repro.sph.kernels import CubicSplineKernel, WendlandC2Kernel
from repro.sph.neighbors import find_neighbors
from repro.sph.physics import compute_density
from repro.sph.propagator import Propagator


@pytest.fixture(scope="module")
def two_system_runs():
    cscs = run_scaled_experiment(CSCS_A100, SUBSONIC_TURBULENCE, 8, num_steps=5)
    lumi = run_scaled_experiment(LUMI_G, SUBSONIC_TURBULENCE, 8, num_steps=5)
    return cscs.run, lumi.run


class TestCompareRuns:
    def test_momentum_energy_is_worst_on_amd(self, two_system_runs):
        """The automated Figure 3 inference: per-particle MomentumEnergy
        energy is much higher on the MI250X than on the A100."""
        cscs, lumi = two_system_runs
        deltas = compare_runs(cscs, lumi, "gpu")
        by_name = {d.function: d for d in deltas}
        me = by_name["MomentumEnergy"]
        assert me.energy_ratio > 1.5
        # And it tops (or nearly tops) the worst-regression ranking.
        assert deltas[0].function in ("MomentumEnergy", "IADVelocityDivCurl")

    def test_targets_identified(self, two_system_runs):
        cscs, lumi = two_system_runs
        deltas = compare_runs(cscs, lumi, "gpu")
        targets = optimization_targets(deltas)
        assert "MomentumEnergy" in targets
        # Cheap functions never become targets regardless of ratio.
        assert "EquationOfState" not in targets

    def test_self_comparison_is_flat(self, two_system_runs):
        cscs, _ = two_system_runs
        deltas = compare_runs(cscs, cscs, "gpu")
        for d in deltas:
            assert d.energy_ratio == pytest.approx(1.0)
        assert optimization_targets(deltas) == []

    def test_report_text(self, two_system_runs):
        cscs, lumi = two_system_runs
        text = comparison_report(cscs, lumi, "gpu")
        assert "LUMI-G" in text and "CSCS-A100" in text
        assert "Optimization targets" in text
        assert "MomentumEnergy" in text

    def test_zero_work_rejected(self, two_system_runs):
        cscs, _ = two_system_runs
        broken = cscs
        object.__setattr__ if False else None
        # Build a shallow broken copy via from_json to avoid mutating.
        import json

        payload = json.loads(cscs.to_json())
        payload["particles_per_rank"] = 0.0
        from repro.instrumentation import RunMeasurements

        broken = RunMeasurements.from_json(json.dumps(payload))
        with pytest.raises(AnalysisError):
            compare_runs(broken, cscs)


class TestWendlandKernel:
    K = WendlandC2Kernel

    def test_peak_value(self):
        val = self.K.value(np.array([0.0]), np.array([1.0]))[0]
        assert val == pytest.approx(21.0 / (16.0 * np.pi))

    def test_compact_support(self):
        w = self.K.value(np.array([1.99, 2.0, 3.0]), np.ones(3))
        assert w[0] > 0 and w[1] == 0 and w[2] == 0

    def test_normalization_3d(self):
        for h in (0.5, 1.0, 2.0):
            r = np.linspace(0, 2 * h, 20001)
            w = self.K.value(r, np.full_like(r, h))
            integral = np.trapezoid(4 * np.pi * r**2 * w, r)
            assert integral == pytest.approx(1.0, rel=1e-6)

    def test_gradient_matches_finite_difference(self):
        r = np.linspace(0.05, 1.9, 150)
        h = np.full_like(r, 1.0)
        eps = 1e-6
        numeric = (self.K.value(r + eps, h) - self.K.value(r - eps, h)) / (2 * eps)
        assert np.allclose(self.K.grad_r(r, h), numeric, rtol=1e-4, atol=1e-8)

    def test_smoothness_properties(self):
        """Derivative vanishes at the origin, and decays toward the
        support edge with a higher order than the cubic spline (the C2
        property at q = 2)."""
        q0 = np.array([1e-6])
        assert abs(self.K.dw(q0)[0]) < 1e-4
        q_edge = np.array([1.95])
        assert abs(self.K.dw(q_edge)[0]) < abs(CubicSplineKernel.dw(q_edge)[0])

    def test_density_with_wendland(self):
        ps, box = make_turbulence(n_side=8, rho0=1.5, seed=41)
        pairs = find_neighbors(ps.pos, ps.h, box)
        compute_density(ps, pairs, kernel=WendlandC2Kernel)
        assert np.median(ps.rho) == pytest.approx(1.5, rel=0.08)

    def test_full_step_with_wendland(self):
        ps, box = make_turbulence(n_side=8, seed=42)
        rng = np.random.default_rng(42)
        ps.vel = rng.normal(0.0, 0.05, size=ps.vel.shape)
        p0 = ps.momentum().copy()
        sim = Simulation(ps, Propagator(box, kernel=WendlandC2Kernel))
        sim.run(3)
        assert np.abs(ps.momentum() - p0).max() < 1e-12
        ps.validate()
