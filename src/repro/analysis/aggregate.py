"""Hardware-configuration-aware measurement attribution.

Raw per-rank counter deltas over-count shared sensors:

* the GPU (``accel``) counter covers a whole *card* — two ranks on an
  MI250X card each measure both GCDs;
* the CPU / memory / node counters cover the whole node — every
  node-local rank measures the same socket.

The correction divides each raw delta by the number of ranks sharing the
sensor, so that summing the attributed values over all ranks reproduces
the true total once.  This is exact when the sharing ranks execute the
same function simultaneously (the SPMD common case) and approximate under
load imbalance — the residual error is quantified by the GCD-attribution
ablation benchmark.
"""

from __future__ import annotations

from repro.errors import AnalysisError
from repro.instrumentation.records import (
    COUNTERS,
    FunctionEnergyRecord,
    RunMeasurements,
)


def sensor_sharing_factor(run: RunMeasurements, counter: str) -> int:
    """How many ranks share the sensor behind ``counter``."""
    if counter == "gpu":
        return run.gcds_per_card
    if counter in ("cpu", "memory", "node"):
        return run.ranks_per_node
    raise AnalysisError(
        f"unknown counter {counter!r}; expected one of {COUNTERS}"
    )


def attributed_joules(
    run: RunMeasurements, record: FunctionEnergyRecord, counter: str
) -> float:
    """A rank's share of its (possibly shared) counter delta."""
    raw = record.joules.get(counter)
    if raw is None:
        raise AnalysisError(
            f"record rank={record.rank} function={record.function!r} has no "
            f"{counter!r} counter"
        )
    return raw / sensor_sharing_factor(run, counter)


def function_totals(run: RunMeasurements, counter: str) -> dict[str, float]:
    """Total attributed energy per function across all ranks."""
    totals: dict[str, float] = {}
    for record in run.records:
        if counter == "memory" and counter not in record.joules:
            continue  # platform without a memory sensor
        value = attributed_joules(run, record, counter)
        totals[record.function] = totals.get(record.function, 0.0) + value
    return totals


def function_seconds(run: RunMeasurements) -> dict[str, float]:
    """Mean (over ranks) accumulated wall time per function."""
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for record in run.records:
        sums[record.function] = sums.get(record.function, 0.0) + record.seconds
        counts[record.function] = counts.get(record.function, 0) + 1
    return {name: sums[name] / counts[name] for name in sums}
