"""RAPL PMT backend: CPU package energy via powercap sysfs.

RAPL registers wrap around (32-bit microjoule accumulators), so the backend
keeps an *unwrapped* running total: each ``read()`` diffs the raw register
against the previous raw value modulo ``max_energy_range_uj``.  RAPL has no
power register; instantaneous watts are estimated from the last two reads.
"""

from __future__ import annotations

from repro.errors import BackendError
from repro.pmt.base import PMT
from repro.pmt.registry import register_backend
from repro.pmt.state import Measurement, State
from repro.sensors.rapl import RAPL_DIR
from repro.sensors.telemetry import NodeTelemetry


@register_backend("rapl")
class RaplPMT(PMT):
    """PMT over the RAPL package domain of the node's CPU."""

    def __init__(self, telemetry: NodeTelemetry, package_index: int = 0) -> None:
        if telemetry.rapl is None:
            raise BackendError(
                f"node {telemetry.node.name} exposes no RAPL domain"
            )
        super().__init__(telemetry.node.clock)
        self._sysfs = telemetry.sysfs
        self._base = f"{RAPL_DIR}/intel-rapl:{package_index}"
        if not self._sysfs.exists(f"{self._base}/energy_uj"):
            raise BackendError(f"no RAPL package {package_index} on this node")
        self._max_uj = int(self._sysfs.read(f"{self._base}/max_energy_range_uj"))
        self._last_raw_uj: int | None = None
        self._unwrapped_uj = 0
        self._last_read: tuple[float, int] | None = None  # (t, unwrapped_uj)

    def _raw_uj(self) -> int:
        return int(self._sysfs.read(f"{self._base}/energy_uj"))

    def read_state(self) -> State:
        t = self.clock.now
        raw = self._raw_uj()
        if self._last_raw_uj is not None:
            delta = raw - self._last_raw_uj
            if delta < 0:
                delta += self._max_uj
            self._unwrapped_uj += delta
        self._last_raw_uj = raw

        watts = 0.0
        if self._last_read is not None:
            t_prev, uj_prev = self._last_read
            if t > t_prev:
                watts = (self._unwrapped_uj - uj_prev) * 1e-6 / (t - t_prev)
        self._last_read = (t, self._unwrapped_uj)

        return State(
            timestamp=t,
            measurements=(
                Measurement(
                    name="package-0",
                    joules=self._unwrapped_uj * 1e-6,
                    watts=watts,
                ),
            ),
        )
