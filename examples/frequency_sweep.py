#!/usr/bin/env python
"""GPU frequency sweep on miniHPC: the Figure 4/5 experiment.

miniHPC is the only Table 1 system whose GPU frequency users may set
(the runner enforces the same restriction the paper hit on LUMI-G and
CSCS-A100).  Sweep the A100 compute clock, measure whole-run and
per-function EDP with the PMT instrumentation, and print the normalized
series.

Run:  python examples/frequency_sweep.py
"""

from repro.analysis.edp import function_edp, normalized_edp_series, run_edp
from repro.config import MINIHPC, SUBSONIC_TURBULENCE
from repro.errors import DvfsError
from repro.experiments.frequency import particles_of_side
from repro.experiments.runner import run_scaled_experiment


def main() -> None:
    freqs = (1410.0, 1320.0, 1230.0, 1140.0, 1050.0, 1005.0)
    sides = (200, 450)
    num_steps = 40

    # The paper's production systems refuse user DVFS — so does ours:
    try:
        from repro.config import LUMI_G

        run_scaled_experiment(
            LUMI_G, SUBSONIC_TURBULENCE, 8, gpu_freq_mhz=1000.0, num_steps=1
        )
    except DvfsError as exc:
        print(f"LUMI-G frequency request rejected (as on the real system):\n  {exc}\n")

    whole: dict[int, dict[float, float]] = {}
    runs_450: dict[float, dict[str, float]] = {}
    for side in sides:
        series = {}
        for freq in freqs:
            result = run_scaled_experiment(
                MINIHPC,
                SUBSONIC_TURBULENCE,
                num_cards=2,
                gpu_freq_mhz=freq,
                num_steps=num_steps,
                particles_per_rank=particles_of_side(side),
            )
            series[freq] = run_edp(result.run)
            if side == 450:
                runs_450[freq] = function_edp(result.run)
        whole[side] = normalized_edp_series(series, 1410.0)

    print("Whole-run EDP normalized to 1410 MHz (Figure 4):")
    print(f"{'side^3':>8} " + " ".join(f"{f:>7.0f}" for f in freqs))
    for side in sides:
        print(
            f"{side:>7}^3 "
            + " ".join(f"{whole[side][f]:>7.3f}" for f in freqs)
        )

    print("\nPer-function EDP at 450^3 normalized to 1410 MHz (Figure 5):")
    for fn in (
        "MomentumEnergy",
        "IADVelocityDivCurl",
        "DomainDecompAndSync",
        "Density",
        "FindNeighbors",
    ):
        series = {f: runs_450[f][fn] for f in freqs}
        norm = normalized_edp_series(series, 1410.0)
        print(
            f"{fn:>22} " + " ".join(f"{norm[f]:>7.3f}" for f in freqs)
        )
    print(
        "\nReading: compute-bound kernels stay ~1.0 (no benefit); "
        "DomainDecompAndSync and the memory-bound kernels improve 20-30%."
    )


if __name__ == "__main__":
    main()
