"""Tests for the simulated Slurm controller and energy accounting."""

import pytest

from repro.config import CSCS_A100, LUMI_G
from repro.errors import SchedulerError
from repro.hardware import Cluster, VirtualClock
from repro.mpi import RankPlacement, RankWork, SpmdEngine
from repro.sensors import NodeTelemetry
from repro.slurm import (
    AcctGatherEnergyPlugin,
    JobAccounting,
    JobDescriptor,
    SlurmController,
    format_consumed_energy,
    sacct_report,
)


def make_stack(system, num_nodes):
    clock = VirtualClock()
    cluster = Cluster("c", clock, system.node_spec, num_nodes, system.network)
    telemetries = [
        NodeTelemetry(node, system, clock, seed=i)
        for i, node in enumerate(cluster.nodes)
    ]
    engine = SpmdEngine(RankPlacement(cluster))
    return clock, cluster, telemetries, engine


class TestJobDescriptor:
    def test_valid(self):
        job = JobDescriptor(name="turb", num_nodes=2, particles_per_rank=1e6)
        assert job.num_nodes == 2

    def test_invalid_nodes(self):
        with pytest.raises(SchedulerError):
            JobDescriptor(name="x", num_nodes=0)

    def test_invalid_particles(self):
        with pytest.raises(SchedulerError):
            JobDescriptor(name="x", num_nodes=1, particles_per_rank=-1)


class TestEnergyPlugin:
    def test_consumed_energy_matches_ground_truth(self):
        clock, cluster, telemetries, engine = make_stack(LUMI_G, 2)
        plugin = AcctGatherEnergyPlugin(telemetries, clock)
        plugin.job_start()
        t0 = clock.now
        engine.run_phase(
            [RankWork(duration=30.0, gpu_compute=0.8, gpu_memory=0.5)] * 16
        )
        plugin.job_end()
        truth = cluster.energy_between(t0, clock.now)
        assert plugin.consumed_energy_joules() == pytest.approx(truth, rel=0.02)

    def test_per_node_split(self):
        clock, cluster, telemetries, engine = make_stack(LUMI_G, 2)
        plugin = AcctGatherEnergyPlugin(telemetries, clock)
        plugin.job_start()
        engine.run_phase([RankWork(duration=10.0)] * 16)
        plugin.job_end()
        per_node = plugin.per_node_joules()
        assert len(per_node) == 2
        assert sum(per_node) == pytest.approx(plugin.consumed_energy_joules())

    def test_periodic_samples(self):
        clock, cluster, telemetries, engine = make_stack(CSCS_A100, 1)
        plugin = AcctGatherEnergyPlugin(telemetries, clock, sample_interval_s=5.0)
        plugin.job_start()
        engine.run_phase([RankWork(duration=21.0)] * 4)
        plugin.job_end()
        sample_times = {s.timestamp for s in plugin.samples}
        assert {0.0, 5.0, 10.0, 15.0, 20.0, 21.0} <= sample_times

    def test_double_start_rejected(self):
        clock, _, telemetries, _ = make_stack(CSCS_A100, 1)
        plugin = AcctGatherEnergyPlugin(telemetries, clock)
        plugin.job_start()
        with pytest.raises(SchedulerError):
            plugin.job_start()

    def test_end_before_start_rejected(self):
        clock, _, telemetries, _ = make_stack(CSCS_A100, 1)
        plugin = AcctGatherEnergyPlugin(telemetries, clock)
        with pytest.raises(SchedulerError):
            plugin.job_end()

    def test_backend_name_per_system(self):
        _, _, lumi_tel, _ = make_stack(LUMI_G, 1)
        _, _, cscs_tel, _ = make_stack(CSCS_A100, 1)
        clock = lumi_tel[0].node.clock
        assert AcctGatherEnergyPlugin(lumi_tel, clock).backend_name == "pm_counters"
        clock2 = cscs_tel[0].node.clock
        assert AcctGatherEnergyPlugin(cscs_tel, clock2).backend_name == "ipmi"


class TestSlurmController:
    def test_job_lifecycle_ordering(self):
        clock, cluster, telemetries, engine = make_stack(CSCS_A100, 1)
        controller = SlurmController(engine, telemetries, CSCS_A100)
        job = JobDescriptor(name="turb", num_nodes=1, particles_per_rank=10e6)

        def app():
            engine.run_phase([RankWork(duration=50.0, gpu_compute=0.9)] * 4)
            return "result"

        acct = controller.run_job(job, app)
        assert acct.submit_time <= acct.start_time < acct.app_start_time
        assert acct.app_start_time < acct.app_end_time <= acct.end_time
        assert acct.app_result == "result"
        assert acct.app_end_time - acct.app_start_time == pytest.approx(50.0)

    def test_setup_energy_included_in_accounting(self):
        """The core Figure 1 mechanism: Slurm integrates the setup phases."""
        clock, cluster, telemetries, engine = make_stack(CSCS_A100, 1)
        controller = SlurmController(engine, telemetries, CSCS_A100)
        job = JobDescriptor(name="turb", num_nodes=1, particles_per_rank=10e6)
        app_truth = {}

        def app():
            t0 = clock.now
            engine.run_phase([RankWork(duration=50.0, gpu_compute=0.9)] * 4)
            app_truth["joules"] = cluster.energy_between(t0, clock.now)

        acct = controller.run_job(job, app)
        assert acct.consumed_energy_joules > app_truth["joules"]
        assert acct.setup_seconds > 0

    def test_lumi_setup_longer_than_cscs(self):
        """LUMI-G's slower launch/init is what widens its Figure 1 gap."""
        def setup_seconds(system):
            clock, cluster, telemetries, engine = make_stack(system, 1)
            controller = SlurmController(engine, telemetries, system)
            job = JobDescriptor(name="j", num_nodes=1, particles_per_rank=50e6)
            acct = controller.run_job(job, lambda: None)
            return acct.setup_seconds

        assert setup_seconds(LUMI_G) > setup_seconds(CSCS_A100)

    def test_init_scales_with_problem_size(self):
        def setup_seconds(particles):
            clock, cluster, telemetries, engine = make_stack(CSCS_A100, 1)
            controller = SlurmController(engine, telemetries, CSCS_A100)
            job = JobDescriptor(name="j", num_nodes=1, particles_per_rank=particles)
            return controller.run_job(job, lambda: None).setup_seconds

        assert setup_seconds(150e6) > setup_seconds(10e6)

    def test_node_count_mismatch_rejected(self):
        clock, cluster, telemetries, engine = make_stack(CSCS_A100, 1)
        controller = SlurmController(engine, telemetries, CSCS_A100)
        with pytest.raises(SchedulerError):
            controller.run_job(JobDescriptor(name="j", num_nodes=2), lambda: None)

    def test_telemetry_count_mismatch_rejected(self):
        clock, cluster, telemetries, engine = make_stack(CSCS_A100, 1)
        with pytest.raises(SchedulerError):
            SlurmController(engine, telemetries * 2, CSCS_A100)


class TestSacct:
    def test_format_consumed_energy(self):
        assert format_consumed_energy(24.4e6) == "24.40M"
        assert format_consumed_energy(1234) == "1.23K"
        assert format_consumed_energy(999) == "999"
        assert format_consumed_energy(3.2e9) == "3.20G"

    def test_report_contains_jobs(self):
        acct = JobAccounting(
            job_id=1001,
            name="turbulence-48",
            num_nodes=12,
            num_ranks=48,
            submit_time=0.0,
            start_time=0.0,
            app_start_time=60.0,
            app_end_time=660.0,
            end_time=670.0,
            consumed_energy_joules=12.5e6,
        )
        report = sacct_report([acct])
        assert "1001" in report
        assert "turbulence-48" in report
        assert "12.50M" in report
        assert "00:11:10" in report
