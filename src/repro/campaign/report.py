"""Campaign summaries: execution stats plus per-shard telemetry health.

The summary answers the two questions a sweep owner has after a run:
*how much did the cache save* (points, hits, misses, simulation steps
actually executed) and *can the numbers be trusted* (the telemetry-health
verdict of every run that had to substitute sensor values, aggregated
from the per-node records the resilient measurement layer keeps).
"""

from __future__ import annotations

from repro.campaign.executor import CampaignStats
from repro.campaign.keys import RunKey, sort_key
from repro.campaign.store import CampaignResult
from repro.instrumentation.reporting import campaign_health_summary


def campaign_summary(
    name: str,
    stats: CampaignStats,
    results: dict[RunKey, CampaignResult],
) -> str:
    """Render one campaign execution's summary block."""
    mode = "federated worker" if stats.federated else "worker"
    lines = [
        f"Campaign {name!r}: {stats.total} points "
        f"({stats.hits} cached, {stats.misses} executed, "
        f"{stats.workers} {mode}{'s' if stats.workers != 1 else ''})",
        f"Simulation steps executed: {stats.executed_steps}",
    ]
    if stats.failed:
        lines.append(f"Failed runs: {stats.failed} (see failure records)")
    runs = {
        key.label: result.run
        for key, result in sorted(results.items(), key=lambda i: sort_key(i[0]))
    }
    lines.append(campaign_health_summary(runs, corrupt=stats.corrupt))
    return "\n".join(lines)
