#!/usr/bin/env python
"""Run the real (small-N) Evrard collapse with Barnes-Hut self-gravity.

The classic cold-collapse test: a rho ~ 1/r gas sphere (G = M = R = 1,
u0 = 0.05) falls in, bounces, and virializes.  Demonstrates the gravity
substrate (cornerstone-style octree, monopole traversal) and tracks
energy conservation — the solver-quality gate DESIGN.md sets.

Run:  python examples/evrard_collapse.py
"""

import numpy as np

from repro.sph import Simulation
from repro.sph.initial_conditions import make_evrard
from repro.sph.propagator import Propagator


def main() -> None:
    n = 2000
    steps = 40

    ps, box = make_evrard(n=n, seed=7)
    propagator = Propagator(box, gravity=True, gravity_theta=0.6, gravity_eps=0.02)
    sim = Simulation(ps, propagator)

    e0 = None
    print(f"Evrard collapse: {n} particles, {steps} steps")
    print(
        f"{'step':>5} {'t':>8} {'dt':>9} {'E_tot':>9} {'E_kin':>8} "
        f"{'E_int':>8} {'E_pot':>9} {'<r>':>7}"
    )
    for k in range(steps):
        stats = sim.step()
        totals = stats.totals
        if e0 is None:
            e0 = totals.total_energy
        if (k + 1) % 5 == 0:
            mean_r = float(np.mean(np.linalg.norm(ps.pos, axis=1)))
            print(
                f"{stats.step:>5} {sim.time:>8.4f} {stats.dt:>9.5f} "
                f"{totals.total_energy:>9.4f} {totals.kinetic:>8.4f} "
                f"{totals.internal:>8.4f} {totals.potential:>9.4f} "
                f"{mean_r:>7.4f}"
            )

    drift = abs(sim.history[-1].totals.total_energy - e0) / abs(e0)
    print(f"\nTotal-energy drift over the run: {drift:.2%}")
    infall = float(
        np.mean(
            np.einsum(
                "ia,ia->i",
                ps.vel,
                ps.pos / np.maximum(np.linalg.norm(ps.pos, axis=1, keepdims=True), 1e-12),
            )
            < 0
        )
    )
    print(f"Fraction of particles infalling: {infall:.1%}")


if __name__ == "__main__":
    main()
