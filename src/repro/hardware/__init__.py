"""Simulated CPU+GPU node hardware substrate.

This package models the hardware the paper measures on: compute devices with
piecewise-constant power draw over a shared virtual clock, DVFS frequency
domains, and node/cluster assemblies matching the LUMI-G, CSCS-A100 and
miniHPC systems from Table 1 of the paper.

The substrate provides *ground-truth* power and energy; the sensor layer
(:mod:`repro.sensors`) observes it imperfectly (sampling cadence,
quantization, per-card rather than per-GCD attribution), which is exactly
the measurement problem the paper's methodology has to work around.
"""

from repro.hardware.clock import VirtualClock
from repro.hardware.trace import PowerTrace, SummedPowerTrace
from repro.hardware.power_model import PowerModel
from repro.hardware.specs import CpuSpec, GpuSpec, MemorySpec, NicSpec
from repro.hardware.dvfs import FrequencyDomain
from repro.hardware.device import Device
from repro.hardware.cpu import CpuDevice
from repro.hardware.gpu import GpuDevice, GpuCard
from repro.hardware.memory import MemoryDevice
from repro.hardware.nic import NicDevice
from repro.hardware.node import Node
from repro.hardware.cluster import Cluster, NetworkModel

__all__ = [
    "VirtualClock",
    "PowerTrace",
    "SummedPowerTrace",
    "PowerModel",
    "CpuSpec",
    "GpuSpec",
    "MemorySpec",
    "NicSpec",
    "FrequencyDomain",
    "Device",
    "CpuDevice",
    "GpuDevice",
    "GpuCard",
    "MemoryDevice",
    "NicDevice",
    "Node",
    "Cluster",
    "NetworkModel",
]
