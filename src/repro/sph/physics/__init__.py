"""SPH physics kernels — one module per SPH-EXA loop function."""

from repro.sph.physics.density import compute_density
from repro.sph.physics.eos import ideal_gas_eos
from repro.sph.physics.iad import compute_iad_and_divcurl
from repro.sph.physics.momentum_energy import compute_momentum_energy
from repro.sph.physics.timestep import compute_timestep
from repro.sph.physics.positions import update_quantities
from repro.sph.physics.smoothing_length import update_smoothing_length
from repro.sph.physics.conservation import energy_conservation

__all__ = [
    "compute_density",
    "ideal_gas_eos",
    "compute_iad_and_divcurl",
    "compute_momentum_energy",
    "compute_timestep",
    "update_quantities",
    "update_smoothing_length",
    "energy_conservation",
]
