"""Campaign execution: cache lookup, worker shards, result collection.

:func:`execute` is the one substrate every sweep in the repo runs on.
It partitions the expanded keys into cache hits and misses, executes the
misses — serially for ``workers=1`` (the degenerate case, retained as
the reference path), or across ``multiprocessing`` shards otherwise —
and archives each completed run before moving on, so a killed sweep
resumes from the completed subset.

Sharding cannot change results: every run is an independent simulation
driven by its own :class:`~repro.hardware.clock.VirtualClock` and seeded
entirely from its :class:`~repro.campaign.keys.RunKey` (never from
worker identity or execution order), so the sharded sweep is
bit-identical to the serial one by construction.  The property tests and
the campaign smoke benchmark enforce this.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Callable

from repro.campaign.keys import RunKey, resolve_test_case
from repro.campaign.store import AccountingSummary, CampaignResult, ResultStore
from repro.config import get_system
from repro.errors import ConfigurationError


@dataclass
class CampaignStats:
    """What one :func:`execute` call did."""

    total: int = 0
    hits: int = 0
    misses: int = 0
    #: Simulation steps actually executed (0 on a fully-cached re-run).
    executed_steps: int = 0
    workers: int = 1
    #: Post-hoc energy-audit coverage (``audit=`` on :func:`execute`):
    #: invariant evaluations run and findings raised across all results,
    #: cache hits included.
    audit_checks: int = 0
    audit_findings: int = 0
    #: Per-key :class:`~repro.audit.findings.AuditReport`, when audited.
    audit_reports: dict | None = None

    @property
    def done(self) -> int:
        return self.hits + self.misses


#: Progress callback: called after every completed point with the stats
#: so far (``stats.done`` of ``stats.total``) and the key just finished.
ProgressFn = Callable[[CampaignStats, RunKey], None]


def execute_key(key: RunKey) -> CampaignResult:
    """Run one campaign point and package the serializable outcome.

    The run is seeded from the key alone; frequency requests use
    privileged DVFS so campaigns can sweep clocks on any system (the
    user-facing ``fig4``/``fig5`` defaults still target miniHPC, the one
    system whose clocks are user controllable).
    """
    from repro.experiments.runner import run_scaled_experiment

    result = run_scaled_experiment(
        get_system(key.system),
        resolve_test_case(key.test_case),
        key.num_cards,
        gpu_freq_mhz=key.gpu_freq_mhz,
        num_steps=key.num_steps,
        particles_per_rank=key.particles_per_rank,
        seed=key.seed,
        privileged_dvfs=True,
        governor=key.governor,
    )
    return CampaignResult(
        key=key,
        run=result.run,
        accounting=AccountingSummary.from_accounting(result.accounting),
    )


def _worker(key: RunKey) -> tuple[RunKey, CampaignResult]:
    return key, execute_key(key)


def execute(
    keys: tuple[RunKey, ...],
    store: ResultStore | None = None,
    workers: int = 1,
    progress: ProgressFn | None = None,
    audit: bool | str | None = None,
) -> tuple[dict[RunKey, CampaignResult], CampaignStats]:
    """Execute a campaign's keys, reusing every cached result.

    Returns the per-key results and the execution stats.  With a
    ``store``, every fresh run is archived the moment it completes.
    ``workers`` > 1 fans the cache misses out over that many OS
    processes; results are collected in completion order but keyed by
    :class:`RunKey`, so downstream merges are order-independent.

    ``audit`` runs the post-hoc energy-accounting audit over *every*
    result — cache hits included, since the checkers work from the
    serialized records — and reports coverage in the stats
    (``audit_checks`` / ``audit_findings`` / ``audit_reports``).
    ``"strict"`` raises :class:`~repro.errors.AuditError` on the first
    error finding.  Runtime (in-situ) auditing of the executing workers
    is env-driven: set ``REPRO_AUDIT`` and the worker processes inherit
    it (the CLI's ``--audit`` flag does exactly that).
    """
    if workers < 1:
        raise ConfigurationError("workers must be >= 1")
    if len(set(keys)) != len(keys):
        raise ConfigurationError("duplicate run keys in campaign")

    stats = CampaignStats(total=len(keys), workers=workers)
    results: dict[RunKey, CampaignResult] = {}

    misses = []
    for key in keys:
        cached = store.get(key) if store is not None else None
        if cached is not None:
            results[key] = cached
            stats.hits += 1
            if progress is not None:
                progress(stats, key)
        else:
            misses.append(key)

    def _collect(key: RunKey, result: CampaignResult) -> None:
        results[key] = result
        stats.misses += 1
        stats.executed_steps += result.run.num_steps
        if store is not None:
            store.put(key, result)
        if progress is not None:
            progress(stats, key)

    if workers == 1 or len(misses) <= 1:
        for key in misses:
            _collect(key, execute_key(key))
    else:
        ctx = multiprocessing.get_context()
        with ctx.Pool(processes=min(workers, len(misses))) as pool:
            for key, result in pool.imap_unordered(_worker, misses):
                _collect(key, result)

    from repro.audit.hooks import AuditSettings, audit_campaign_result

    audit_settings = AuditSettings.resolve(audit)
    if audit_settings.enabled:
        stats.audit_reports = {}
        for key in keys:
            report = audit_campaign_result(
                results[key], strict=audit_settings.strict
            )
            stats.audit_reports[key] = report
            stats.audit_checks += report.checks_run
            stats.audit_findings += len(report.findings)

    return results, stats
