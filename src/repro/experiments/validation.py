"""Figure 1: PMT-measured vs Slurm-reported energy across scales.

Runs the Subsonic Turbulence workload with energy measurement enabled on
8-to-48 GPU cards (one rank per GPU unit) and compares PMT's instrumented
total against Slurm's ConsumedEnergy on each system.
"""

from __future__ import annotations

from repro.analysis.validation import ValidationPoint
from repro.campaign.executor import ProgressFn, execute
from repro.campaign.merge import merge_figure1
from repro.campaign.spec import CampaignSpec, expand
from repro.campaign.store import ResultStore
from repro.config import SUBSONIC_TURBULENCE, SystemConfig, TestCaseConfig

#: The card counts of Figure 1.
FIGURE1_CARD_COUNTS = (8, 16, 24, 32, 40, 48)


def figure1_spec(
    system: SystemConfig,
    card_counts: tuple[int, ...] = FIGURE1_CARD_COUNTS,
    test_case: TestCaseConfig = SUBSONIC_TURBULENCE,
    num_steps: int | None = None,
    seed: int = 0,
) -> CampaignSpec:
    """One system's Figure 1 sweep as a declarative campaign."""
    return CampaignSpec(
        name="fig1",
        systems=(system.name,),
        test_cases=(test_case.name,),
        card_counts=tuple(card_counts),
        num_steps=num_steps,
        seeds=(seed,),
    )


def figure1_series(
    system: SystemConfig,
    card_counts: tuple[int, ...] = FIGURE1_CARD_COUNTS,
    test_case: TestCaseConfig = SUBSONIC_TURBULENCE,
    num_steps: int | None = None,
    seed: int = 0,
    workers: int = 1,
    store: ResultStore | None = None,
    progress: ProgressFn | None = None,
) -> list[ValidationPoint]:
    """One system's PMT-vs-Slurm series."""
    spec = figure1_spec(
        system, card_counts, test_case=test_case, num_steps=num_steps, seed=seed
    )
    results, _ = execute(
        expand(spec), store=store, workers=workers, progress=progress
    )
    return merge_figure1(results)


def figure1_table(points: list[ValidationPoint]) -> str:
    """Render a Figure 1 series as the text table the bench prints."""
    lines = [
        f"{'System':>10} {'Cards':>6} {'PMT [MJ]':>10} {'Slurm [MJ]':>11} "
        f"{'PMT/Slurm':>10} {'Quality':>9}",
    ]
    for p in points:
        lines.append(
            f"{p.system_name:>10} {p.num_cards:>6} "
            f"{p.pmt_joules / 1e6:>10.3f} {p.slurm_joules / 1e6:>11.3f} "
            f"{p.ratio:>10.3f} {p.quality:>9}"
        )
    return "\n".join(lines)
