"""Property tests for the flat CSR neighbor engine.

The CSR cell-list builder, the skin-cached :class:`CsrVerletList` and the
:class:`CsrStepContext` SoA kernel engine must be *exact* reformulations
of the directed :class:`PairList` oracle: identical directed pair sets
for arbitrary configurations (random boxes, periodic wrap, mixed
smoothing lengths, isolated particles), pair geometry equal to <= 1e-12,
physics fields equal to <= 1e-12 relative error, and momentum
conservation to round-off.  float32 pair storage is the one deliberate
relaxation and gets its own (looser) gate.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.sph.box import Box
from repro.sph.neighbors import (
    BufferPool,
    brute_force_pairs,
    csr_neighbors,
    find_neighbors,
)
from repro.sph.pair_cache import CsrStepContext, CsrVerletList
from repro.sph.physics import (
    compute_density,
    compute_iad_and_divcurl,
    compute_momentum_energy,
    ideal_gas_eos,
)
from repro.sph.physics.grad_h import compute_omega
from tests.test_pair_cache import clone, make_case, run_oracle

RTOL = 1e-12


def directed_set(pairs):
    return set(zip(pairs.i.tolist(), pairs.j.tolist()))


def assert_matches_oracle(csr, oracle):
    """Directed pair sets identical; geometry equal to <= 1e-12."""
    got = csr.to_directed()
    assert directed_set(got) == directed_set(oracle)
    order_g = np.lexsort((got.j, got.i))
    order_w = np.lexsort((oracle.j, oracle.i))
    assert np.allclose(
        got.r[order_g], oracle.r[order_w], rtol=RTOL, atol=0.0
    )
    assert np.allclose(
        got.dx[order_g], oracle.dx[order_w], rtol=RTOL, atol=1e-300
    )
    # The CSR invariants themselves.
    assert csr.offsets[0] == 0
    assert csr.offsets[-1] == csr.n_pairs
    assert np.all(np.diff(csr.offsets) >= 0)
    counts = csr.neighbor_counts()
    assert counts.sum() == csr.n_pairs
    assert np.array_equal(counts, oracle.neighbor_counts())


def run_csr(ps, box, pair_dtype="float64", pool=None):
    """The physics chain through the CSR/SoA engine."""
    csr = csr_neighbors(ps.pos, ps.h, box)
    ctx = CsrStepContext(csr, ps.h, pool=pool, pair_dtype=pair_dtype)
    ps.nc = csr.neighbor_counts()
    compute_density(ps, ctx)
    ideal_gas_eos(ps)
    compute_iad_and_divcurl(ps, ctx)
    omega = compute_omega(ps, ctx)
    compute_momentum_energy(ps, ctx, omega=omega)
    return ps


class TestCsrBuilder:
    """csr_neighbors == directed brute force, for any configuration."""

    @given(
        st.integers(min_value=2, max_value=120),
        st.floats(min_value=0.02, max_value=0.2),
        st.booleans(),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_equivalence_property(self, n, h_scale, periodic, seed):
        """Random boxes, uniform h: exact directed pair sets + geometry."""
        box = Box(length=1.0, periodic=periodic)
        rng = np.random.default_rng(seed)
        pos = rng.uniform(box.lo, box.hi, size=(n, 3))
        h = np.full(n, h_scale)
        assert_matches_oracle(
            csr_neighbors(pos, h, box), brute_force_pairs(pos, h, box)
        )

    @given(
        st.integers(min_value=2, max_value=80),
        st.booleans(),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_mixed_h_property(self, n, periodic, seed):
        """Per-particle smoothing lengths: the union cutoff 2 max(hi, hj)
        must bin by the *largest* support, never drop a long-reach pair."""
        box = Box(length=1.0, periodic=periodic)
        rng = np.random.default_rng(seed)
        pos = rng.uniform(box.lo, box.hi, size=(n, 3))
        h = rng.uniform(0.02, 0.18, size=n)
        assert_matches_oracle(
            csr_neighbors(pos, h, box), brute_force_pairs(pos, h, box)
        )

    def test_periodic_wrap_pairs(self):
        """Pairs across every face and corner of the periodic box."""
        box = Box(length=1.0, periodic=True)
        eps = 0.01
        corner = 0.5 - eps
        pos = np.array(
            [
                [-corner, 0.0, 0.0], [corner, 0.0, 0.0],
                [0.0, -corner, 0.0], [0.0, corner, 0.0],
                [-corner, -corner, -corner], [corner, corner, corner],
            ]
        )
        h = np.full(len(pos), 0.05)
        csr = csr_neighbors(pos, h, box)
        assert_matches_oracle(csr, brute_force_pairs(pos, h, box))
        assert directed_set(csr.to_directed()) == {
            (0, 1), (1, 0), (2, 3), (3, 2), (4, 5), (5, 4),
        }

    def test_empty_neighborhoods(self):
        """Isolated particles keep empty CSR segments (zero counts) and
        the segment reductions must not leak neighbours into them."""
        box = Box(length=4.0, periodic=False)
        pos = np.array(
            [
                [0.0, 0.0, 0.0], [0.05, 0.0, 0.0],  # a close pair
                [1.5, 1.5, 1.5],                     # isolated
                [-1.5, -1.5, 1.5],                   # isolated
            ]
        )
        h = np.full(4, 0.1)
        csr = csr_neighbors(pos, h, box)
        assert_matches_oracle(csr, brute_force_pairs(pos, h, box))
        assert csr.neighbor_counts().tolist() == [1, 1, 0, 0]
        ctx = CsrStepContext(csr, h)
        ones = np.ones(csr.n_pairs)
        sums = ctx.reduce_sum(ones)
        assert sums.tolist() == [1.0, 1.0, 0.0, 0.0]

    def test_no_particles_at_all_interacting(self):
        box = Box(length=10.0, periodic=False)
        pos = np.array([[0.0, 0.0, 0.0], [5.0, 0.0, 0.0]])
        h = np.full(2, 0.1)
        csr = csr_neighbors(pos, h, box)
        assert csr.n_pairs == 0
        assert csr.neighbor_counts().tolist() == [0, 0]

    def test_pool_reuse_is_exact_and_allocation_free(self):
        """Re-querying through one pool must stay exact and, once warm,
        perform no further buffer growth (the no-per-step-allocations
        contract of the hot path)."""
        box = Box(length=1.0, periodic=True)
        rng = np.random.default_rng(7)
        pool = BufferPool()
        n = 300
        for trial in range(6):
            pos = rng.uniform(box.lo, box.hi, size=(n, 3))
            h = rng.uniform(0.04, 0.1, size=n)
            csr = csr_neighbors(pos, h, box, pool=pool)
            assert_matches_oracle(csr, brute_force_pairs(pos, h, box))
            if trial == 2:
                warm = pool.nbytes
        assert pool.nbytes == warm


class TestCsrPhysics:
    """CSR/SoA physics chain == directed oracle chain, to <= 1e-12."""

    @pytest.mark.parametrize("case", ["turbulence", "sedov", "open"])
    def test_full_chain_matches_oracle(self, case):
        ps, box = make_case(case)
        oracle = run_oracle(clone(ps), box)
        csr = run_csr(clone(ps), box)

        assert np.array_equal(oracle.nc, csr.nc)
        for field in ("rho", "p", "c", "div_v", "curl_v", "du", "v_sig_max"):
            a, b = getattr(oracle, field), getattr(csr, field)
            assert np.allclose(a, b, rtol=RTOL, atol=1e-300), field
        scale = np.abs(oracle.acc).max()
        assert np.abs(oracle.acc - csr.acc).max() <= RTOL * scale
        assert np.allclose(oracle.c_iad, csr.c_iad, rtol=1e-10)

    @pytest.mark.parametrize("case", ["turbulence", "sedov", "open"])
    def test_momentum_conserved_to_roundoff(self, case):
        ps, box = make_case(case)
        out = run_csr(ps, box)
        net = np.sum(out.mass[:, None] * out.acc, axis=0)
        scale = np.sum(np.abs(out.mass[:, None] * out.acc)) + 1e-300
        assert np.abs(net).max() < 1e-13 * scale * 10

    def test_float32_pairs_gated_looser(self):
        """float32 pair storage fails the 1e-12 gate (which is why it is
        not the default) but must stay within single-precision error of
        the oracle, with reductions still accumulated in float64."""
        ps, box = make_case("turbulence")
        oracle = run_oracle(clone(ps), box)
        f32 = run_csr(clone(ps), box, pair_dtype="float32")
        scale = np.abs(oracle.acc).max()
        dev = np.abs(oracle.acc - f32.acc).max() / scale
        assert dev < 1e-4        # single-precision ballpark ...
        assert np.allclose(oracle.rho, f32.rho, rtol=1e-4)

    def test_pair_dtype_validated(self):
        ps, box = make_case("turbulence")
        csr = csr_neighbors(ps.pos, ps.h, box)
        with pytest.raises(SimulationError, match="pair_dtype"):
            CsrStepContext(csr, ps.h, pair_dtype="float16")

    def test_kernel_values_match_legacy_context(self):
        """The branchless in-buffer cubic spline is the same polynomial
        as the piecewise kernel, re-associated; it may differ by a few
        ulp per value but never beyond."""
        ps, box = make_case("turbulence")
        csr = csr_neighbors(ps.pos, ps.h, box)
        ctx = CsrStepContext(csr, ps.h)
        from repro.sph.kernels.cubic_spline import CubicSplineKernel

        want = CubicSplineKernel.value(csr.r, ps.h[csr.row])
        assert np.allclose(ctx.w_own, want, rtol=5e-15, atol=0.0)


class TestCsrVerletList:
    """The CSR skin cache must reproduce a fresh search exactly, always."""

    def drift(self, ps, box, rng, sigma):
        ps.pos = box.wrap(ps.pos + rng.normal(0.0, sigma, size=ps.pos.shape))

    @pytest.mark.parametrize("case", ["turbulence", "sedov", "open"])
    def test_matches_oracle_after_movement(self, case):
        ps, box = make_case(case)
        nlist = CsrVerletList(box)
        rng = np.random.default_rng(17)
        sigma = 0.002 * float(np.mean(ps.h))
        for _ in range(8):
            got = nlist.query(ps.pos, ps.h)
            assert_matches_oracle(got, brute_force_pairs(ps.pos, ps.h, box))
            self.drift(ps, box, rng, sigma)
        assert nlist.n_builds < nlist.n_queries
        assert nlist.rebuild_fraction < 1.0

    @pytest.mark.parametrize("case", ["turbulence", "open"])
    def test_exact_under_reorder_and_drift(self, case):
        """SFC relabelings between queries: the cache follows the
        permutation through its label map instead of rebuilding, and the
        published list must stay exact in *current* labels."""
        ps, box = make_case(case)
        nlist = CsrVerletList(box)
        rng = np.random.default_rng(19)
        sigma = 0.002 * float(np.mean(ps.h))
        for _ in range(6):
            got = nlist.query(ps.pos, ps.h)
            assert_matches_oracle(got, brute_force_pairs(ps.pos, ps.h, box))
            order = rng.permutation(ps.n)
            ps.reorder(order)
            nlist.reorder(order)
            self.drift(ps, box, rng, sigma)
        # The permutations alone never forced a rebuild.
        assert nlist.n_builds < nlist.n_queries

    def test_growing_h_stays_exact(self):
        ps, box = make_case("turbulence")
        nlist = CsrVerletList(box)
        nlist.query(ps.pos, ps.h)
        ps.h = ps.h * 1.5
        got = nlist.query(ps.pos, ps.h)
        assert_matches_oracle(got, brute_force_pairs(ps.pos, ps.h, box))
        assert nlist.n_builds == 2

    def test_shrinking_h_reuses_cache(self):
        ps, box = make_case("turbulence")
        nlist = CsrVerletList(box)
        nlist.query(ps.pos, ps.h)
        ps.h = ps.h * 0.9
        got = nlist.query(ps.pos, ps.h)
        assert_matches_oracle(got, brute_force_pairs(ps.pos, ps.h, box))
        assert nlist.n_builds == 1

    def test_zero_skin_rebuilds_every_query(self):
        ps, box = make_case("turbulence")
        nlist = CsrVerletList(box, skin_factor=0.0)
        for _ in range(3):
            got = nlist.query(ps.pos, ps.h)
            assert_matches_oracle(got, brute_force_pairs(ps.pos, ps.h, box))
        assert nlist.n_builds == 3

    def test_negative_skin_rejected(self):
        with pytest.raises(SimulationError):
            CsrVerletList(Box(length=1.0), skin_factor=-0.1)

    def test_particle_count_change_invalidates(self):
        ps, box = make_case("turbulence")
        nlist = CsrVerletList(box)
        nlist.query(ps.pos, ps.h)
        got = nlist.query(ps.pos[:-10], ps.h[:-10])
        assert_matches_oracle(
            got, brute_force_pairs(ps.pos[:-10], ps.h[:-10], box)
        )
        assert nlist.n_builds == 2

    def test_steady_state_queries_do_not_grow_pool(self):
        ps, box = make_case("turbulence")
        nlist = CsrVerletList(box)
        rng = np.random.default_rng(23)
        sigma = 0.001 * float(np.mean(ps.h))
        for _ in range(3):  # warm up (includes at least one build)
            nlist.query(ps.pos, ps.h)
            self.drift(ps, box, rng, sigma)
        warm = nlist.pool.nbytes
        for _ in range(5):
            nlist.query(ps.pos, ps.h)
            self.drift(ps, box, rng, sigma)
        assert nlist.pool.nbytes == warm


class TestFindNeighborsCompat:
    def test_adapter_equals_csr(self):
        """cell_list_pairs/find_neighbors ride on the same CSR builder."""
        ps, box = make_case("turbulence")
        csr = csr_neighbors(ps.pos, ps.h, box)
        directed = find_neighbors(ps.pos, ps.h, box)
        assert directed_set(csr.to_directed()) == directed_set(directed)
