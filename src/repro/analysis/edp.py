"""Energy-delay products (Figures 4 and 5).

EDP = energy x time; the paper normalizes each frequency's EDP to the
1410 MHz baseline, both for whole simulations (Figure 4) and per loop
function (Figure 5).
"""

from __future__ import annotations

from repro.analysis.aggregate import function_seconds, function_totals
from repro.errors import AnalysisError
from repro.instrumentation.records import RunMeasurements

def edp(joules: float, seconds: float) -> float:
    """The energy-delay product."""
    if joules < 0 or seconds < 0:
        raise AnalysisError("EDP inputs must be non-negative")
    return joules * seconds


def run_edp(run: RunMeasurements) -> float:
    """Whole-run EDP from the PMT-measured device energies.

    Uses the GPU counters — on miniHPC, the frequency-sweep system, the
    GPU is the device whose clock is scaled and the one PMT measures with
    per-function resolution (NVML), so the Figure 4 EDP is built from the
    same energy as the Figure 5 per-function EDPs.
    """
    total = sum(function_totals(run, "gpu").values())
    return edp(total, run.app_seconds)


def function_edp(run: RunMeasurements) -> dict[str, float]:
    """Per-function EDP from attributed device energies and mean time.

    Uses the GPU counter: on the frequency-sweep system the GPU is both
    the device whose clock is being scaled and the only one with a
    fine-grained per-function sensor (NVML; the 1 Hz IPMI node counter
    quantizes sub-second functions to zero energy).
    """
    gpu = function_totals(run, "gpu")
    seconds = function_seconds(run)
    return {name: edp(gpu[name], seconds[name]) for name in gpu}


def normalized_edp_series(
    by_frequency: dict[float, float], baseline_mhz: float
) -> dict[float, float]:
    """Normalize an ``{MHz: EDP}`` mapping to the baseline frequency."""
    try:
        base = by_frequency[baseline_mhz]
    except KeyError:
        raise AnalysisError(
            f"baseline frequency {baseline_mhz!r} missing from series "
            f"{sorted(by_frequency)}"
        ) from None
    if base <= 0:
        raise AnalysisError("baseline EDP must be positive")
    return {freq: value / base for freq, value in sorted(by_frequency.items())}
