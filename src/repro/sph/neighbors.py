"""Neighbor search: flat CSR cell list, legacy pair lists, brute force.

Produces neighbor structures with separation below the pair cutoff
``2 * max(h_i, h_j)`` — the union support needed by symmetrized SPH sums
(each term is then masked by its own kernel's compact support).  Three
representations exist:

* :class:`CsrNeighborList` — the production structure: flat CSR
  ``offsets``/``indices`` arrays plus per-entry geometry, grouped by
  gather target so physics kernels reduce whole segments with
  ``np.add.reduceat`` instead of scatter-adds.
* :class:`PairList` — *directed* pairs ``(i, j)`` and ``(j, i)`` both
  present.  This is the oracle representation the tests cross-validate
  against, and the format every physics kernel accepted historically.
* :class:`HalfPairList` — *undirected* pairs stored once with ``i < j``
  (the pre-CSR cached path, kept for ablation benchmarking).

The cell list is one code path for every particle count: candidates are
counted and filled *per cell* (all particles in a cell share the same
stencil), so the per-axis stencil offsets collapse to ``{0}`` or
``{0, 1}`` on periodic axes with fewer than three cells and the old
small-box brute-force fallback is gone.  The O(N^2) brute force survives
only as the test oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.sph import csolver
from repro.sph.box import Box
from repro.sph.kernels.cubic_spline import SUPPORT_RADIUS

#: Cap on the total linked-cell count.  ``coords @ strides`` silently
#: wraps int64 beyond this, producing wrong (not just slow) pair lists,
#: so the cell list refuses instead (see :func:`_grid_shape`).
_MAX_TOTAL_CELLS = 2**62

#: Candidate rows processed per chunk in the cutoff filter.  Bounds the
#: size of the filter's temporaries to O(chunk), independent of the
#: total candidate count.
_FILTER_CHUNK = 1 << 22


class BufferPool:
    """Grow-only pool of named scratch arrays.

    ``get`` returns a view of exactly the requested size over a cached
    backing buffer that only ever grows (by 25% headroom), so steady-state
    queries perform no large allocations.  Views are valid until the same
    name is requested again with a larger size.
    """

    def __init__(self) -> None:
        self._bufs: dict[str, np.ndarray] = {}

    def get(self, name: str, size: int, dtype) -> np.ndarray:
        """A 1-D view of ``size`` elements of the named buffer."""
        buf = self._bufs.get(name)
        if buf is None or buf.dtype != np.dtype(dtype) or buf.size < size:
            cap = size + size // 4 + 16
            buf = np.empty(cap, dtype=dtype)
            self._bufs[name] = buf
        return buf[:size]

    def rows(self, name: str, size: int, width: int, dtype) -> np.ndarray:
        """A ``(size, width)`` view of the named buffer."""
        return self.get(name, size * width, dtype).reshape(size, width)

    def nbytes(self) -> int:
        """Total bytes currently held by the pool (diagnostics)."""
        return sum(buf.nbytes for buf in self._bufs.values())


@dataclass(frozen=True)
class PairList:
    """Directed interacting pairs and their geometry.

    ``dx[k] = pos[i[k]] - pos[j[k]]`` (minimum image), ``r[k] = |dx[k]|``.
    """

    i: np.ndarray
    j: np.ndarray
    dx: np.ndarray
    r: np.ndarray
    n_particles: int

    @property
    def n_pairs(self) -> int:
        """Number of directed pairs."""
        return len(self.i)

    def neighbor_counts(self) -> np.ndarray:
        """Per-particle neighbor counts."""
        return np.bincount(self.i, minlength=self.n_particles)


@dataclass(frozen=True)
class HalfPairList:
    """Undirected interacting pairs, stored once with ``i < j``.

    Geometry follows the directed convention for the stored direction:
    ``dx[k] = pos[i[k]] - pos[j[k]]`` (minimum image), ``r[k] = |dx[k]|``.
    The mirrored pair ``(j, i)`` has displacement ``-dx``.
    """

    i: np.ndarray
    j: np.ndarray
    dx: np.ndarray
    r: np.ndarray
    n_particles: int

    @property
    def n_pairs(self) -> int:
        """Number of undirected pairs (half the directed count)."""
        return len(self.i)

    def neighbor_counts(self) -> np.ndarray:
        """Per-particle neighbor counts (each pair counts for both ends)."""
        return np.bincount(self.i, minlength=self.n_particles) + np.bincount(
            self.j, minlength=self.n_particles
        )

    def to_directed(self) -> PairList:
        """Expand to the equivalent directed :class:`PairList`."""
        return PairList(
            i=np.concatenate([self.i, self.j]),
            j=np.concatenate([self.j, self.i]),
            dx=np.concatenate([self.dx, -self.dx]),
            r=np.concatenate([self.r, self.r]),
            n_particles=self.n_particles,
        )


@dataclass
class CsrNeighborList:
    """Directed neighbors in CSR layout, grouped by gather target.

    Segment ``s`` spans ``indices[offsets[s]:offsets[s+1]]`` — the
    neighbors of one particle.  ``row[k]`` repeats that particle's index
    per entry (the gather side of every per-pair term), ``dx[k] =
    pos[row[k]] - pos[indices[k]]`` (minimum image), ``r[k] = |dx[k]|``.

    ``targets`` maps segment number to particle index; ``None`` means
    the identity (segment ``s`` belongs to particle ``s``).  A Verlet
    cache that survives SFC relabelings keeps its segments in *build*
    order and publishes the current labels through ``targets``/``row``
    instead of re-sorting the flat arrays every step.

    The arrays may be views into a reused :class:`BufferPool`; they are
    valid until the producing query runs again.
    """

    offsets: np.ndarray
    indices: np.ndarray
    row: np.ndarray
    dx: np.ndarray
    r: np.ndarray
    n_particles: int
    targets: np.ndarray | None = None

    @property
    def n_pairs(self) -> int:
        """Number of directed neighbor entries."""
        return len(self.indices)

    def neighbor_counts(self) -> np.ndarray:
        """Per-particle directed neighbor counts."""
        counts = np.diff(self.offsets)
        if self.targets is None:
            if len(counts) == self.n_particles:
                return counts
            out = np.zeros(self.n_particles, dtype=counts.dtype)
            out[: len(counts)] = counts
            return out
        out = np.zeros(self.n_particles, dtype=counts.dtype)
        out[self.targets] = counts
        return out

    def to_directed(self) -> PairList:
        """The equivalent directed :class:`PairList` (test oracle format)."""
        return PairList(
            i=self.row.astype(np.int64),
            j=self.indices.astype(np.int64),
            dx=self.dx,
            r=self.r,
            n_particles=self.n_particles,
        )


def _pair_geometry(
    pos: np.ndarray, h: np.ndarray, box: Box, i: np.ndarray, j: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Filter candidate index pairs by the union cutoff; return geometry."""
    dx = box.displacement(pos[i] - pos[j])
    r2 = np.einsum("ij,ij->i", dx, dx)
    cutoff = SUPPORT_RADIUS * np.maximum(h[i], h[j])
    keep = r2 < cutoff**2
    return i[keep], j[keep], dx[keep], np.sqrt(r2[keep])


def brute_force_pairs(
    pos: np.ndarray, h: np.ndarray, box: Box, half: bool = False
) -> PairList | HalfPairList:
    """All-pairs O(N^2) neighbor search (test oracle, small N only).

    Enumerates only the strict upper triangle (``np.triu_indices``) and
    mirrors the surviving half pairs when a directed list is requested —
    half the candidate memory and distance work of the former full
    ``meshgrid`` (which also carried the i == j diagonal).
    """
    n = len(pos)
    if n != len(h):
        raise SimulationError("pos and h length mismatch")
    iu, ju = np.triu_indices(n, k=1)
    i, j, dx, r = _pair_geometry(pos, h, box, iu, ju)
    if half:
        return HalfPairList(i=i, j=j, dx=dx, r=r, n_particles=n)
    return HalfPairList(i=i, j=j, dx=dx, r=r, n_particles=n).to_directed()


# -- the CSR cell-list engine --------------------------------------------------


def _grid_shape(
    pos: np.ndarray, cutoff: float, box: Box
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cell-grid origin, per-axis cell counts and widths.

    The cell width is at least ``cutoff`` (so a 27-stencil suffices) and
    the total cell count is clamped to O(N): pathologically small
    smoothing lengths get a coarser — still correct — grid instead of an
    O(domain/cutoff)^3 memory blow-up.
    """
    n = len(pos)
    if box.periodic:
        origin = np.full(3, box.lo)
        extent = np.full(3, box.length)
    else:
        # Open boxes anchor the grid at the box's own (known) bounds so
        # successive calls bin identically; only particles that escaped
        # the nominal box extend the grid beyond them.
        lo = np.minimum(pos.min(axis=0), box.lo)
        hi = np.maximum(pos.max(axis=0), box.hi)
        origin = lo
        extent = np.maximum(hi - lo, 1e-300)

    raw = np.maximum(np.floor(extent / cutoff), 1.0)
    if float(raw.prod()) > _MAX_TOTAL_CELLS:
        dims = tuple(f"{c:.3g}" for c in raw)
        min_cell = float(np.max(extent)) / (_MAX_TOTAL_CELLS ** (1.0 / 3.0))
        raise SimulationError(
            f"cell grid {dims} overflows the int64 cell index: the pair "
            f"cutoff {cutoff:.3e} is too small for the domain extent "
            f"{tuple(float(e) for e in np.round(extent, 6))}; increase the "
            f"smoothing lengths so the cell size exceeds ~{min_cell:.3e}, "
            "or shrink the domain"
        )
    # Clamp the grid to O(N) cells; wider cells stay correct (the
    # stencil still covers the cutoff) and bound the per-cell arrays.
    nmax = max(4, int(np.ceil((8.0 * max(n, 1)) ** (1.0 / 3.0))))
    ncell = np.minimum(raw, nmax).astype(np.int64)
    width = extent / ncell
    return origin, ncell, width


def _axis_offsets(ncell_axis: int, periodic: bool) -> tuple[int, ...]:
    """Stencil offsets along one axis, deduplicated for small grids.

    With one periodic cell every offset aliases 0; with two, -1 aliases
    +1.  Visiting each neighbor cell exactly once keeps the candidate
    list duplicate-free without any brute-force fallback.
    """
    if periodic:
        if ncell_axis == 1:
            return (0,)
        if ncell_axis == 2:
            return (0, 1)
    return (-1, 0, 1)


def _neighbor_cells(ncell: np.ndarray, periodic: bool):
    """Yield per-cell neighbor ids (flattened) and a validity mask.

    For each stencil offset, an array over *cells* (not particles)
    giving each cell's neighbor-cell flat id; ``valid`` is ``None`` for
    periodic boxes (all neighbors exist) or a boolean mask for open-box
    edge cells.
    """
    ax = [np.arange(ncell[d], dtype=np.int64) for d in range(3)]
    offs = [_axis_offsets(int(ncell[d]), periodic) for d in range(3)]
    for ox in offs[0]:
        for oy in offs[1]:
            for oz in offs[2]:
                nx, ny, nz = ax[0] + ox, ax[1] + oy, ax[2] + oz
                if periodic:
                    nx %= ncell[0]
                    ny %= ncell[1]
                    nz %= ncell[2]
                    valid = None
                else:
                    vx = (nx >= 0) & (nx < ncell[0])
                    vy = (ny >= 0) & (ny < ncell[1])
                    vz = (nz >= 0) & (nz < ncell[2])
                    valid = (
                        vx[:, None, None] & vy[None, :, None] & vz[None, None, :]
                    ).ravel()
                    np.clip(nx, 0, ncell[0] - 1, out=nx)
                    np.clip(ny, 0, ncell[1] - 1, out=ny)
                    np.clip(nz, 0, ncell[2] - 1, out=nz)
                nb = (
                    (nx[:, None, None] * ncell[1] + ny[None, :, None]) * ncell[2]
                    + nz[None, None, :]
                ).ravel()
                yield nb, valid


def _cell_bins(
    pos: np.ndarray, h_search: np.ndarray, box: Box
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Bin particles into the stencil cell grid.

    Returns ``(ncell, flat, order, occ, cellstart)``: per-axis cell
    counts, each particle's flat cell id, the stable cell-sort
    permutation, and per-cell occupancy counts / start offsets into it.
    """
    cutoff = SUPPORT_RADIUS * float(np.max(h_search))
    if not np.isfinite(cutoff) or cutoff <= 0:
        raise SimulationError("non-positive smoothing lengths in neighbor search")
    origin, ncell, width = _grid_shape(pos, cutoff, box)
    total_cells = int(ncell[0] * ncell[1] * ncell[2])

    coords = np.floor((pos - origin) / width).astype(np.int64)
    if box.periodic:
        # Unwrapped positions bin to their wrapped cell (exact modulo),
        # keeping the stencil invariant without requiring callers to
        # wrap first; the filter's minimum image handles the geometry.
        coords %= ncell
    else:
        np.clip(coords, 0, ncell - 1, out=coords)
    flat = (coords[:, 0] * ncell[1] + coords[:, 1]) * ncell[2] + coords[:, 2]

    order = np.argsort(flat, kind="stable")
    occ = np.bincount(flat, minlength=total_cells)
    cellstart = np.zeros(total_cells, dtype=np.int64)
    np.cumsum(occ[:-1], out=cellstart[1:])
    return ncell, flat, order, occ, cellstart


def _stencil_counts(
    ncell: np.ndarray, occ: np.ndarray, flat: np.ndarray, periodic: bool
) -> np.ndarray:
    """Per-particle stencil-occupancy counts (the raw candidate counts)."""
    per_cell = np.zeros(len(occ), dtype=np.int64)
    for nb, valid in _neighbor_cells(ncell, periodic):
        contrib = occ[nb]
        if valid is not None:
            contrib = np.where(valid, contrib, 0)
        per_cell += contrib
    return per_cell[flat]


def _csr_filtered_fused(
    pos: np.ndarray,
    h_search: np.ndarray,
    box: Box,
    pool: BufferPool,
    cfast,
    *,
    want_geometry: bool,
    out_prefix: str,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None, np.ndarray | None]:
    """Compiled fused candidate generation + exact self-excluding filter.

    Walks each particle's stencil cells in C and applies the cutoff
    test inline, producing output bitwise identical to
    :func:`_csr_candidates` + :func:`_filter_candidates` while never
    materializing the O(27 nnz) raw candidate arrays.  Same return
    shape as :func:`_filter_candidates`.
    """
    n = len(pos)
    ncell, flat, order, occ, cellstart = _cell_bins(pos, h_search, box)
    nnz = int(_stencil_counts(ncell, occ, flat, box.periodic).sum())
    out_row = pool.get(out_prefix + "row", nnz, np.int32)
    out_cand = pool.get(out_prefix + "cand", nnz, np.int32)
    out_dx = pool.rows(out_prefix + "dx", nnz, 3, np.float64) if want_geometry else None
    out_r = pool.get(out_prefix + "r", nnz, np.float64) if want_geometry else None
    counts = np.zeros(n, dtype=np.int64)
    pos_c = np.ascontiguousarray(pos, dtype=np.float64)
    h_c = np.ascontiguousarray(h_search, dtype=np.float64)
    order32 = order.astype(np.int32)
    kept = csolver.cell_filter(
        cfast, pos_c, h_c, box.length, box.periodic, SUPPORT_RADIUS,
        ncell, flat, order32, cellstart, occ, counts,
        out_row, out_cand, out_dx, out_r, True,
    )
    out_dx = out_dx[:kept] if want_geometry else None
    out_r = out_r[:kept] if want_geometry else None
    return counts, out_row[:kept], out_cand[:kept], out_dx, out_r


def _csr_candidates(
    pos: np.ndarray, h_search: np.ndarray, box: Box, pool: BufferPool
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Unfiltered CSR candidates from the cell grid.

    Returns ``(cand_offsets, row, cand)``: for each particle, the
    occupants of its stencil cells (including itself), counted and
    filled *per cell* — particles sharing a cell share the stencil, so
    counting runs over the (much smaller) cell arrays and the fill is a
    handful of vectorized range concatenations per stencil offset.
    """
    n = len(pos)
    ncell, flat, order, occ, cellstart = _cell_bins(pos, h_search, box)
    cand_counts = _stencil_counts(ncell, occ, flat, box.periodic)
    cand_off = pool.get("cs_off", n + 1, np.int64)
    cand_off[0] = 0
    np.cumsum(cand_counts, out=cand_off[1:])
    nnz = int(cand_off[-1])

    cand = pool.get("cs_cand", nnz, np.int32)
    row = pool.get("cs_row", nnz, np.int32)
    order32 = order.astype(np.int32)
    fill = np.zeros(n, dtype=np.int64)
    for nb, valid in _neighbor_cells(ncell, box.periodic):
        nbp = nb[flat]
        lens = occ[nbp]
        if valid is not None:
            lens = np.where(valid[flat], lens, 0)
        total = int(lens.sum())
        if total:
            shift = np.cumsum(lens) - lens
            within = np.arange(total, dtype=np.int64) - np.repeat(shift, lens)
            dest = np.repeat(cand_off[:-1] + fill, lens) + within
            src = np.repeat(cellstart[nbp], lens) + within
            cand[dest] = order32[src]
        fill += lens
    row_fill = np.repeat(np.arange(n, dtype=np.int32), cand_counts)
    row[: len(row_fill)] = row_fill
    return cand_off, row, cand


def _filter_candidates(
    pos: np.ndarray,
    h: np.ndarray,
    box: Box,
    row: np.ndarray,
    cand: np.ndarray,
    pool: BufferPool,
    *,
    exclude_self: bool,
    out_prefix: str,
    in_place: bool,
    want_geometry: bool,
    count_idx: np.ndarray | None = None,
    cfast=None,
    label: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None, np.ndarray | None]:
    """Keep candidate rows within the exact union cutoff.

    Processes the flat candidate arrays in constant-size chunks (bounding
    every temporary to O(chunk)), compacting the survivors — and, when
    ``want_geometry``, their minimum-image ``dx`` and ``r`` — into pool
    buffers (or into ``row``/``cand`` themselves when ``in_place``).

    Returns ``(counts, out_row, out_cand, out_dx, out_r)`` where
    ``counts`` is the per-segment surviving-entry count, binned over
    ``count_idx`` when given (a Verlet cache counts by *build* label
    while gathering geometry by current label) and over ``row``
    otherwise.

    ``cfast`` is an optional :mod:`repro.sph.csolver` library handle; the
    compiled filter performs the identical IEEE operations in the
    identical order, so its output is bitwise equal to the NumPy path.
    ``label`` (compiled path only) translates build-time labels in
    ``row``/``cand`` to current particle indices on the fly, so the
    caller need not materialize the translated arrays.
    """
    if label is not None and cfast is None:
        raise SimulationError("label translation requires the compiled filter")
    n = len(pos)
    nnz = len(cand)
    if in_place:
        out_row, out_cand = row, cand
    else:
        out_row = pool.get(out_prefix + "row", nnz, np.int32)
        out_cand = pool.get(out_prefix + "cand", nnz, np.int32)
    out_dx = pool.rows(out_prefix + "dx", nnz, 3, np.float64) if want_geometry else None
    out_r = pool.get(out_prefix + "r", nnz, np.float64) if want_geometry else None
    counts = np.zeros(n, dtype=np.int64)

    if cfast is not None:
        cursor = csolver.filter_candidates(
            cfast,
            np.ascontiguousarray(pos, dtype=np.float64),
            np.ascontiguousarray(h, dtype=np.float64),
            box.length, box.periodic, SUPPORT_RADIUS,
            row, cand, counts, out_row, out_cand, out_dx, out_r,
            count_idx, exclude_self, label,
        )
        out_dx = out_dx[:cursor] if want_geometry else None
        out_r = out_r[:cursor] if want_geometry else None
        return counts, out_row[:cursor], out_cand[:cursor], out_dx, out_r

    px = [np.ascontiguousarray(pos[:, a]) for a in range(3)]
    d = [pool.get(f"fc_d{a}", min(nnz, _FILTER_CHUNK), np.float64) for a in range(3)]
    r2 = pool.get("fc_r2", min(nnz, _FILTER_CHUNK), np.float64)
    ha = pool.get("fc_ha", min(nnz, _FILTER_CHUNK), np.float64)
    hb = pool.get("fc_hb", min(nnz, _FILTER_CHUNK), np.float64)
    inv_len = 1.0 / box.length
    cursor = 0
    for start in range(0, nnz, _FILTER_CHUNK):
        stop = min(start + _FILTER_CHUNK, nnz)
        m = stop - start
        rc = row[start:stop]
        cc = cand[start:stop]
        r2c = r2[:m]
        r2c[:] = 0.0
        for a in range(3):
            da = d[a][:m]
            np.take(px[a], rc, out=da, mode="clip")
            np.subtract(da, px[a][cc], out=da)
            if box.periodic:
                t = ha[:m]
                np.multiply(da, inv_len, out=t)
                np.rint(t, out=t)
                t *= -box.length
                da += t
            r2c += da * da
        hac = ha[:m]
        hbc = hb[:m]
        np.take(h, rc, out=hac, mode="clip")
        np.take(h, cc, out=hbc, mode="clip")
        np.maximum(hac, hbc, out=hac)
        hac *= SUPPORT_RADIUS
        hac *= hac
        keep = r2c < hac
        if exclude_self:
            keep &= rc != cc
        kept_rows = np.compress(keep, rc)
        k = len(kept_rows)
        if k:
            if count_idx is None:
                counts += np.bincount(kept_rows, minlength=n)
            else:
                counts += np.bincount(
                    np.compress(keep, count_idx[start:stop]), minlength=n
                )
            out_row[cursor : cursor + k] = kept_rows
            out_cand[cursor : cursor + k] = np.compress(keep, cc)
            if want_geometry:
                for a in range(3):
                    out_dx[cursor : cursor + k, a] = np.compress(keep, d[a][:m])
                np.sqrt(np.compress(keep, r2c), out=out_r[cursor : cursor + k])
            cursor += k
    out_dx = out_dx[:cursor] if want_geometry else None
    out_r = out_r[:cursor] if want_geometry else None
    return counts, out_row[:cursor], out_cand[:cursor], out_dx, out_r


def csr_neighbors(
    pos: np.ndarray,
    h: np.ndarray,
    box: Box,
    pool: BufferPool | None = None,
    cfast=None,
) -> CsrNeighborList:
    """Exact CSR neighbor search (one code path for every N).

    The returned arrays are views into ``pool`` (a private pool when
    ``None``), valid until the pool's next search.  ``cfast`` optionally
    routes the cutoff filter through the compiled fast path (bitwise
    identical output; see :mod:`repro.sph.csolver`).
    """
    n = len(pos)
    if n != len(h):
        raise SimulationError("pos and h length mismatch")
    if pool is None:
        pool = BufferPool()
    if cfast is not None:
        counts, row, cand, dx, r = _csr_filtered_fused(
            pos, h, box, pool, cfast,
            want_geometry=True, out_prefix="cs_q",
        )
    else:
        _, row, cand = _csr_candidates(pos, h, box, pool)
        counts, row, cand, dx, r = _filter_candidates(
            pos, h, box, row, cand, pool,
            exclude_self=True, out_prefix="cs_q", in_place=True,
            want_geometry=True,
        )
    offsets = pool.get("cs_qoff", n + 1, np.int64)
    offsets[0] = 0
    np.cumsum(counts, out=offsets[1:])
    return CsrNeighborList(
        offsets=offsets, indices=cand, row=row, dx=dx, r=r, n_particles=n
    )


def cell_list_pairs(
    pos: np.ndarray, h: np.ndarray, box: Box, half: bool = False
) -> PairList | HalfPairList:
    """Cell-list neighbor search in the legacy pair-list formats.

    A thin adapter over :func:`csr_neighbors` — the CSR engine is the
    single production code path; this keeps the historical ``PairList``
    and ``HalfPairList`` consumers (and the ablation baseline) working.
    """
    csr = csr_neighbors(pos, h, box)
    i = csr.row.astype(np.int64)
    j = csr.indices.astype(np.int64)
    if half:
        keep = i < j
        return HalfPairList(
            i=i[keep], j=j[keep], dx=csr.dx[keep], r=csr.r[keep],
            n_particles=len(pos),
        )
    return PairList(
        i=i, j=j, dx=csr.dx.copy(), r=csr.r.copy(), n_particles=len(pos)
    )


def find_neighbors(
    pos: np.ndarray, h: np.ndarray, box: Box, half: bool = False
) -> PairList | HalfPairList:
    """The production neighbor search (CSR cell list, pair-list format).

    Formerly dispatched to an O(N^2) brute force below a small-N
    threshold; the cell list is now the single code path (the per-cell
    candidate machinery makes it competitive at any N), and the brute
    force survives only as the test oracle.
    """
    return cell_list_pairs(pos, h, box, half=half)
