"""Failure-injection tests: frozen counters, dropouts, glitches, the
corresponding detectors/mitigations, and the resilient degradation ladder."""

import numpy as np
import pytest

from repro.errors import SensorError
from repro.hardware import PowerTrace
from repro.sensors import SampledEnergyCounter
from repro.sensors.base import SensorReading
from repro.sensors.faults import (
    DropoutFault,
    FrozenCounterFault,
    GlitchFault,
    detect_frozen_counter,
    detect_glitches,
    interpolate_energy_across_dropout,
)
from repro.sensors.resilient import (
    ResilientSensor,
    SensorHealth,
    diff_counters,
)


@pytest.fixture
def counter():
    trace = PowerTrace(initial_watts=200.0)
    return SampledEnergyCounter(trace, refresh_period_s=0.1)


class TestFrozenCounter:
    def test_normal_before_freeze(self, counter):
        faulty = FrozenCounterFault(counter, freeze_at=10.0)
        assert faulty.read(5.0).joules == counter.read(5.0).joules

    def test_frozen_after(self, counter):
        faulty = FrozenCounterFault(counter, freeze_at=10.0)
        at_freeze = faulty.read(10.0)
        later = faulty.read(100.0)
        assert later.joules == at_freeze.joules
        assert later.timestamp == at_freeze.timestamp

    def test_region_across_freeze_reads_zero_energy(self, counter):
        """The dangerous failure mode: silently missing energy."""
        faulty = FrozenCounterFault(counter, freeze_at=10.0)
        start = faulty.read(10.0)
        end = faulty.read(20.0)
        assert end.joules - start.joules == 0.0

    def test_detector_fires(self, counter):
        faulty = FrozenCounterFault(counter, freeze_at=10.0)
        times = [0.0, 5.0, 10.0, 15.0, 20.0]
        readings = [faulty.read(t) for t in times]
        assert detect_frozen_counter(times, readings)

    def test_detector_quiet_on_healthy_sensor(self, counter):
        times = [0.0, 5.0, 10.0, 15.0]
        readings = [counter.read(t) for t in times]
        assert not detect_frozen_counter(times, readings)

    def test_invalid_freeze_time(self, counter):
        with pytest.raises(SensorError):
            FrozenCounterFault(counter, freeze_at=-1.0)


class TestDropout:
    def test_reads_fail_in_window(self, counter):
        faulty = DropoutFault(counter, 5.0, 8.0)
        faulty.read(4.9)
        with pytest.raises(SensorError):
            faulty.read(6.0)
        faulty.read(8.0)

    def test_interpolation_recovers_energy(self, counter):
        faulty = DropoutFault(counter, 5.0, 8.0)
        before = faulty.read(4.9)
        after = faulty.read(8.1)
        estimated = interpolate_energy_across_dropout(before, after, 6.5)
        truth = counter.read(6.5).joules
        # Constant power: linear interpolation is near exact.
        assert estimated == pytest.approx(truth, rel=0.05)

    def test_interpolation_rejects_out_of_range(self, counter):
        before = counter.read(1.0)
        after = counter.read(2.0)
        with pytest.raises(SensorError):
            interpolate_energy_across_dropout(before, after, 5.0)

    def test_invalid_window(self, counter):
        with pytest.raises(SensorError):
            DropoutFault(counter, 5.0, 5.0)


class TestGlitch:
    def test_glitches_only_touch_power(self, counter):
        faulty = GlitchFault(counter, probability=1.0, magnitude_watts=9e9)
        reading = faulty.read(3.0)
        clean = counter.read(3.0)
        assert reading.watts == 9e9
        assert reading.joules == clean.joules

    def test_zero_probability_is_transparent(self, counter):
        faulty = GlitchFault(counter, probability=0.0)
        assert faulty.read(3.0) == counter.read(3.0)

    def test_deterministic_given_seed(self, counter):
        a = GlitchFault(counter, probability=0.3, seed=5)
        b = GlitchFault(counter, probability=0.3, seed=5)
        times = np.linspace(0, 10, 50)
        assert [a.read(t).watts for t in times] == [
            b.read(t).watts for t in times
        ]

    def test_detector_finds_them(self, counter):
        faulty = GlitchFault(
            counter, probability=0.3, magnitude_watts=10_000.0, seed=1
        )
        readings = [faulty.read(t) for t in np.linspace(0, 10, 60)]
        flagged = detect_glitches(readings, plausible_max_watts=1_000.0)
        assert len(flagged) > 0
        for k in flagged:
            assert readings[k].watts == 10_000.0

    def test_invalid_probability(self, counter):
        with pytest.raises(SensorError):
            GlitchFault(counter, probability=1.5)


class TestResilientSensorLadder:
    def test_transparent_on_healthy_sensor(self, counter):
        res = ResilientSensor(counter, label="x")
        assert res.read(5.0) == counter.read(5.0)
        assert res.health.reads == 1
        assert res.health.status == "ok"

    def test_retry_steps_over_short_outage(self, counter):
        # Backoff schedule reads at t, t+0.05, t+0.15, t+0.35: the fourth
        # attempt lands past a 0.2 s outage.
        faulty = DropoutFault(counter, 5.0, 5.2)
        res = ResilientSensor(faulty, label="x")
        reading = res.read(5.0)
        assert res.health.retries == 3
        assert res.health.retry_successes == 1
        assert res.health.gaps_interpolated == 0
        assert res.health.status == "ok"
        assert reading.joules == counter.read(5.35).joules

    def test_interpolates_across_long_outage(self, counter):
        faulty = DropoutFault(counter, 5.0, 30.0)
        res = ResilientSensor(faulty, label="x")
        before = res.read(4.0)
        reading = res.read(6.0)
        assert res.health.gaps_interpolated == 1
        assert res.health.gap_seconds == pytest.approx(2.0)
        assert res.health.status == "degraded"
        assert reading.joules == pytest.approx(
            before.joules + before.watts * (6.0 - before.timestamp)
        )

    def test_zero_baseline_without_last_good_value(self, counter):
        # An outage covering the very first read cannot crash the run:
        # the ladder bottoms out at a zero-power, zero-energy baseline
        # (accumulators are relative), with the gap on the books.
        faulty = DropoutFault(counter, 0.0, 100.0)
        res = ResilientSensor(faulty, label="x")
        reading = res.read(1.0)
        assert reading.watts == 0.0
        assert reading.joules == 0.0
        assert res.health.gaps_interpolated == 1
        assert res.health.status == "degraded"
        # Still held at the zero baseline while the outage lasts.
        later = res.read(5.0)
        assert later.joules == 0.0
        assert res.health.gap_seconds == pytest.approx(4.0)

    def test_stuck_counter_detected_and_extrapolated(self, counter):
        faulty = FrozenCounterFault(counter, freeze_at=10.0)
        res = ResilientSensor(faulty, label="x")
        reading = None
        for t in range(31):
            reading = res.read(float(t))
        assert res.health.stuck_detections == 1
        assert res.health.stuck_reads > 0
        assert res.health.status == "degraded"
        # Constant 200 W: extrapolating from the freeze anchor is exact.
        assert reading.joules == pytest.approx(
            counter.read(30.0).joules, rel=0.01
        )

    def test_within_refresh_reads_not_flagged_stuck(self, counter):
        # A healthy sampled counter repeats values inside one refresh
        # period; the grace window must keep that from tripping detection.
        res = ResilientSensor(counter, label="x")
        for t in (1.0, 1.02, 1.04, 1.06, 1.08):
            res.read(t)
        assert res.health.stuck_reads == 0
        assert res.health.status == "ok"

    def test_glitch_rejected_and_substituted(self, counter):
        faulty = GlitchFault(counter, probability=1.0, magnitude_watts=9e9)
        res = ResilientSensor(faulty, label="x", plausible_max_watts=1000.0)
        first = res.read(1.0)
        assert first.watts == 1000.0  # no last good: clamped to the bound
        second = res.read(2.0)
        assert second.watts == 1000.0  # substituted from last good
        assert second.joules == counter.read(2.0).joules
        assert res.health.glitches_rejected == 2
        # Glitch rejection alone never degrades the sensor.
        assert res.health.status == "ok"

    def test_parameter_validation(self, counter):
        with pytest.raises(SensorError):
            ResilientSensor(counter, max_retries=-1)
        with pytest.raises(SensorError):
            ResilientSensor(counter, backoff_s=0.0)
        with pytest.raises(SensorError):
            ResilientSensor(counter, stuck_reads=0)
        with pytest.raises(SensorError):
            ResilientSensor(counter, plausible_max_watts=0.0)


class TestSensorHealthRecord:
    def test_add_accumulates_counters_and_latch(self):
        a = SensorHealth(reads=2, retries=1)
        b = SensorHealth(reads=3, gap_seconds=1.5, degraded=True)
        a.add(b)
        assert a.reads == 5
        assert a.retries == 1
        assert a.gap_seconds == 1.5
        assert a.degraded
        assert a.status == "degraded"

    def test_diff_counters_drops_zero_deltas(self):
        before = SensorHealth(reads=10, retries=2).counters()
        after = SensorHealth(reads=14, retries=2, gap_seconds=0.5).counters()
        delta = diff_counters(after, before)
        assert delta == {"reads": 4, "gap_seconds": 0.5}


class TestInjectFault:
    @pytest.fixture
    def cscs(self):
        from repro.config import CSCS_A100
        from repro.hardware import Node, VirtualClock
        from repro.sensors import NodeTelemetry

        clock = VirtualClock()
        node = Node("n0", clock, CSCS_A100.node_spec)
        return clock, NodeTelemetry(node, CSCS_A100, clock)

    @pytest.fixture
    def lumi(self):
        from repro.config import LUMI_G
        from repro.hardware import Node, VirtualClock
        from repro.sensors import NodeTelemetry

        clock = VirtualClock()
        node = Node("n0", clock, LUMI_G.node_spec)
        return clock, NodeTelemetry(node, LUMI_G, clock)

    def test_unknown_kind_rejected(self, cscs):
        from repro.sensors.inject import inject_fault

        _, tel = cscs
        with pytest.raises(SensorError):
            inject_fault(tel, "meltdown", "gpu0")

    def test_unknown_target_rejected(self, cscs):
        from repro.sensors.inject import inject_fault

        _, tel = cscs
        with pytest.raises(SensorError):
            inject_fault(tel, "freeze", "fpga0")

    def test_out_of_range_gpu_rejected(self, cscs):
        from repro.sensors.inject import inject_fault

        _, tel = cscs
        with pytest.raises(SensorError):
            inject_fault(tel, "freeze", "gpu9")

    def test_no_memory_sensor_off_cray(self, cscs):
        from repro.sensors.inject import inject_fault

        _, tel = cscs
        with pytest.raises(SensorError):
            inject_fault(tel, "freeze", "memory")

    def test_cpu_dropout_reaches_rapl_consumer(self, cscs):
        from repro.sensors.inject import inject_fault

        clock, tel = cscs
        wrapper = inject_fault(
            tel, "dropout", "cpu", outage_start=1.0, outage_end=2.0
        )
        assert isinstance(wrapper, DropoutFault)
        import repro.pmt as pmt

        meter = pmt.create("rapl", telemetry=tel)
        meter.read()
        clock.advance(1.5)
        with pytest.raises(SensorError):
            meter.read()

    def test_rocm_target_on_cray_platform(self, lumi):
        from repro.sensors.inject import inject_fault

        _, tel = lumi
        wrapper = inject_fault(tel, "glitch", "rocm0", probability=1.0)
        assert isinstance(wrapper, GlitchFault)


class TestDetectorEdgeCases:
    def test_empty_readings(self):
        assert not detect_frozen_counter([], [])
        assert detect_glitches([], 100.0) == []

    def test_same_time_pairs_ignored(self):
        r = SensorReading(timestamp=1.0, watts=100.0, joules=50.0)
        assert not detect_frozen_counter([1.0, 1.0], [r, r])

    def test_length_mismatch_rejected(self):
        with pytest.raises(SensorError):
            detect_frozen_counter([1.0], [])
