"""Distributed (multi-rank) execution of the real solver.

SPMD-emulated in-process: each rank owns a contiguous SFC segment of the
particle set (from :class:`~repro.sph.cornerstone.domain.DomainDecomposition`)
and computes the hydro loop on its *local* set — owned particles plus the
halo particles within kernel support of its domain.  Between functions
that consume freshly computed neighbour fields (density before IAD, IAD
matrices before MomentumEnergy), halo copies are refreshed from their
owners — the halo exchanges a real MPI run performs.

Each rank builds one flat CSR neighbor list per step (local membership
changes with the decomposition, so the serial path's cross-step Verlet
cache does not apply) and restricts it to the owned-row prefix: owned
particles come first in the local index space, so the restriction is a
zero-copy slice of the CSR arrays.  One
:class:`~repro.sph.pair_cache.CsrStepContext` per rank then shares
kernel values and IAD gradient vectors across every loop function of
the step, with per-rank scratch pools persisting across steps.

This is the executable proof that the cornerstone decomposition and halo
discovery are *correct*: the distributed step must reproduce the serial
step to floating-point reordering tolerance, for any rank count — one of
the library's key integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.sph.box import Box
from repro.sph.cornerstone.domain import DomainDecomposition
from repro.sph.hooks import ProfilingHooks
from repro.sph.kernels.cubic_spline import CubicSplineKernel
from repro.sph.neighbors import BufferPool, CsrNeighborList, csr_neighbors
from repro.sph.pair_cache import CsrStepContext
from repro.sph.particles import ParticleSet
from repro.sph.physics import (
    compute_density,
    compute_iad_and_divcurl,
    compute_momentum_energy,
    compute_timestep,
    energy_conservation,
    ideal_gas_eos,
    update_quantities,
    update_smoothing_length,
)
from repro.sph.physics.eos import DEFAULT_GAMMA
from repro.sph.propagator import StepStats

#: Fields shipped in a halo refresh, with their per-particle byte cost.
_HALO_FIELD_BYTES = {
    "pos": 24,
    "vel": 24,
    "mass": 8,
    "h": 8,
    "rho": 8,
    "u": 8,
    "p": 8,
    "c": 8,
    "div_v": 8,
    "curl_v": 8,
    "c_iad": 72,
}


@dataclass
class CommStats:
    """Communication bookkeeping of one distributed step."""

    halo_particles: list[int] = field(default_factory=list)
    halo_exchanges: int = 0
    halo_bytes: float = 0.0
    allreduce_count: int = 0

    def record_exchange(self, halo_counts: list[int], fields: tuple[str, ...]) -> None:
        per_particle = sum(_HALO_FIELD_BYTES[f] for f in fields)
        self.halo_exchanges += 1
        self.halo_bytes += per_particle * sum(halo_counts)


class DistributedHydro:
    """Rank-decomposed hydro stepping over a shared global particle set."""

    _LOCAL_FIELDS = (
        "pos", "vel", "mass", "h", "rho", "u", "p", "c", "div_v", "curl_v",
    )

    def __init__(
        self,
        box: Box,
        n_ranks: int,
        gamma: float = DEFAULT_GAMMA,
        av_alpha: float = 1.0,
        n_target: int = 100,
        courant: float = 0.2,
        bucket_size: int = 32,
        kernel=CubicSplineKernel,
        accel: str = "numpy",
    ) -> None:
        if n_ranks <= 0:
            raise SimulationError("need at least one rank")
        from repro.sph import csolver

        self.accel = accel
        self._cfast = csolver.resolve(accel)
        self.box = box
        self.n_ranks = n_ranks
        self.domain = DomainDecomposition(box, n_ranks, bucket_size)
        self.gamma = gamma
        self.av_alpha = av_alpha
        self.n_target = n_target
        self.courant = courant
        self.kernel = kernel
        self._step = 0
        self._dt_prev: float | None = None
        # Per-rank persistent scratch pools: neighbor-build buffers and
        # kernel-engine buffers.  The CSR views a rank hands its step
        # context alias its build pool, so pools must not be shared
        # across ranks (rank B's build would clobber rank A's live
        # views while the step interleaves the rank loops per region).
        self._build_pools = [BufferPool() for _ in range(n_ranks)]
        self._kernel_pools = [BufferPool() for _ in range(n_ranks)]
        #: Per-step communication statistics (appended each step).
        self.comm_history: list[CommStats] = []

    # -- local-view plumbing -----------------------------------------------------

    def _make_local(self, ps: ParticleSet, local_idx: np.ndarray) -> ParticleSet:
        """A rank-local copy of the global fields (the initial exchange)."""
        lps = ParticleSet(len(local_idx))
        for name in self._LOCAL_FIELDS:
            setattr(lps, name, getattr(ps, name)[local_idx].copy())
        lps.c_iad = ps.c_iad[local_idx].copy()
        return lps

    def _refresh(
        self,
        ps: ParticleSet,
        lps: ParticleSet,
        local_idx: np.ndarray,
        fields: tuple[str, ...],
    ) -> None:
        """Re-copy freshly computed fields into a rank's local view.

        The owned prefix re-reads the values this rank just scattered
        back (a no-op in value terms); the halo tail picks up what the
        owning ranks computed — the halo exchange of a real MPI step.
        """
        for name in fields:
            setattr(lps, name, getattr(ps, name)[local_idx].copy())

    def _scatter(
        self,
        ps: ParticleSet,
        lps: ParticleSet,
        owned_global: np.ndarray,
        n_owned: int,
        fields: tuple[str, ...],
    ) -> None:
        """Write a rank's owned results back to the global arrays."""
        for name in fields:
            getattr(ps, name)[owned_global] = getattr(lps, name)[:n_owned]

    def _restrict_csr(
        self, csr: CsrNeighborList, n_owned: int
    ) -> CsrNeighborList:
        """Keep only the segments whose gather target is an owned particle.

        Owned particles are the prefix of the local index space and the
        exact CSR build groups segments in particle order, so the
        restriction is a prefix slice — no copies.  Owned rows then
        accumulate *complete* sums (every pair touching an owned
        particle is present in its segment); only the owned prefix is
        ever scattered back, so halo rows are never observed.
        """
        offsets = csr.offsets[: n_owned + 1]
        end = int(offsets[-1])
        return CsrNeighborList(
            offsets=offsets,
            indices=csr.indices[:end],
            row=csr.row[:end],
            dx=csr.dx[:end],
            r=csr.r[:end],
            n_particles=csr.n_particles,
        )

    # -- the step -------------------------------------------------------------------

    def step(
        self, ps: ParticleSet, hooks: ProfilingHooks | None = None
    ) -> StepStats:
        """Advance the global particle set by one distributed step."""
        hooks = hooks if hooks is not None else ProfilingHooks()
        comm = CommStats()

        with hooks.region("DomainDecompAndSync"):
            sync = self.domain.sync(ps)
            owned_ranges = sync.rank_ranges
            halos = [
                self.domain.halo_indices(ps, rank) for rank in range(self.n_ranks)
            ]
            comm.halo_particles = [len(h) for h in halos]
            local_idx = [
                np.concatenate(
                    [np.arange(start, end, dtype=np.int64), halos[rank]]
                )
                for rank, (start, end) in enumerate(owned_ranges)
            ]
            owned_global = [
                np.arange(start, end, dtype=np.int64)
                for start, end in owned_ranges
            ]
            n_owned = [end - start for start, end in owned_ranges]
            comm.record_exchange(
                comm.halo_particles, ("pos", "vel", "mass", "h", "u")
            )

        with hooks.region("FindNeighbors"):
            # Each rank builds its local set once per step; subsequent
            # regions refresh only the fields the preceding function
            # computed.  The CSR list restricted to owned rows feeds one
            # step context per rank (kernel values, IAD vectors shared
            # across all loop functions).
            locals_: list[ParticleSet] = []
            rank_ctxs: list[CsrStepContext] = []
            n_owned_entries = 0
            for rank in range(self.n_ranks):
                lps = self._make_local(ps, local_idx[rank])
                csr = self._restrict_csr(
                    csr_neighbors(
                        lps.pos, lps.h, self.box,
                        pool=self._build_pools[rank],
                        cfast=self._cfast,
                    ),
                    n_owned[rank],
                )
                locals_.append(lps)
                rank_ctxs.append(
                    CsrStepContext(
                        csr, lps.h, self.kernel,
                        pool=self._kernel_pools[rank],
                        cfast=self._cfast,
                    )
                )
                n_owned_entries += csr.n_pairs
                # Every directed entry of an owned row is present, so
                # the segment lengths are the exact neighbour counts.
                ps.nc[owned_global[rank]] = np.diff(csr.offsets)

        with hooks.region("Density"):
            for rank in range(self.n_ranks):
                lps = locals_[rank]
                compute_density(lps, rank_ctxs[rank], self.kernel)
                self._scatter(
                    ps, lps, owned_global[rank], n_owned[rank], ("rho",)
                )
            comm.record_exchange(comm.halo_particles, ("rho",))

        with hooks.region("EquationOfState"):
            for rank in range(self.n_ranks):
                lps = locals_[rank]
                self._refresh(ps, lps, local_idx[rank], ("rho",))
                ideal_gas_eos(lps, self.gamma)
                self._scatter(
                    ps, lps, owned_global[rank], n_owned[rank], ("p", "c")
                )
            comm.record_exchange(comm.halo_particles, ("p", "c"))

        with hooks.region("IADVelocityDivCurl"):
            for rank in range(self.n_ranks):
                lps = locals_[rank]
                self._refresh(ps, lps, local_idx[rank], ("p", "c"))
                compute_iad_and_divcurl(lps, rank_ctxs[rank], self.kernel)
                self._scatter(
                    ps, lps, owned_global[rank], n_owned[rank],
                    ("div_v", "curl_v"),
                )
                ps.c_iad[owned_global[rank]] = lps.c_iad[: n_owned[rank]]
            comm.record_exchange(
                comm.halo_particles, ("c_iad", "div_v", "curl_v")
            )

        with hooks.region("MomentumEnergy"):
            v_sig = np.zeros(ps.n)
            for rank in range(self.n_ranks):
                lps = locals_[rank]
                self._refresh(
                    ps, lps, local_idx[rank], ("div_v", "curl_v")
                )
                # Fresh halo matrices; the new array identity also makes
                # the context re-derive its IAD vectors from them.
                lps.c_iad = ps.c_iad[local_idx[rank]].copy()
                compute_momentum_energy(
                    lps, rank_ctxs[rank], self.kernel, av_alpha=self.av_alpha
                )
                ps.acc[owned_global[rank]] = lps.acc[: n_owned[rank]]
                ps.du[owned_global[rank]] = lps.du[: n_owned[rank]]
                v_sig[owned_global[rank]] = lps.v_sig_max[: n_owned[rank]]
            ps.v_sig_max = v_sig

        with hooks.region("Timestep"):
            # Per-rank local minimum, then the global allreduce(min).
            local_dts = []
            for rank in range(self.n_ranks):
                sub = ParticleSet(max(n_owned[rank], 1))
                idx = owned_global[rank]
                if len(idx):
                    sub.h = ps.h[idx]
                    sub.acc = ps.acc[idx]
                    sub.v_sig_max = ps.v_sig_max[idx]
                    local_dts.append(
                        compute_timestep(sub, self._dt_prev, courant=self.courant)
                    )
            dt = min(local_dts)
            comm.allreduce_count += 1

        with hooks.region("UpdateQuantities"):
            update_quantities(ps, dt, self.box)

        with hooks.region("UpdateSmoothingLength"):
            h_max = 0.99 * self.box.length / 4.0 if self.box.periodic else None
            update_smoothing_length(ps, self.n_target, h_max=h_max)

        with hooks.region("EnergyConservation"):
            totals = energy_conservation(ps)
            comm.allreduce_count += 1

        self.comm_history.append(comm)
        self._dt_prev = dt
        self._step += 1
        # Each undirected pair contributes one directed entry to each
        # endpoint's (uniquely owned) row: the sum of owned-row entries
        # is exactly twice the global undirected pair count.
        return StepStats(
            step=self._step,
            dt=dt,
            n_pairs=n_owned_entries // 2,
            mean_neighbors=float(np.mean(ps.nc)),
            totals=totals,
        )
