"""Regression tests for the accounting bugs the audit layer flushed out.

Each class pins one fixed bug:

* sampler boundary attribution — catch-up samples are taken *at* their
  boundary times (the clock segments coarse advances), so per-segment
  energy sums telescope to the whole-run energy;
* profile window clipping — per-region stats integrate the partial
  sampling interval at each window edge instead of dropping it;
* NVML millijoule counter — the sub-millijoule residual is carried, not
  truncated per read, so repeated reads don't drift;
* RAPL wrap landing — a read landing exactly on the wrap boundary is
  credited one register range instead of tripping the stuck-sensor path.
"""

import pytest

import repro.pmt as pmt
from repro.analysis.profile import clip_rows, interpolated_row, profile_stats
from repro.config import CSCS_A100, LUMI_G
from repro.errors import AnalysisError, SensorError
from repro.hardware import Node, VirtualClock
from repro.pmt import PmtSampler
from repro.pmt.sampler import SampleRow
from repro.sensors import NodeTelemetry
from repro.sensors.rapl import RAPL_MAX_ENERGY_RANGE_J, RaplPackage


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def lumi(clock):
    node = Node("n0", clock, LUMI_G.node_spec)
    return node, NodeTelemetry(node, LUMI_G, clock)


@pytest.fixture
def cscs(clock):
    node = Node("n0", clock, CSCS_A100.node_spec)
    return node, NodeTelemetry(node, CSCS_A100, clock)


class TestSamplerBoundaryAttribution:
    def test_catchup_rows_land_on_their_boundaries(self, clock, lumi):
        node, tel = lumi
        sampler = PmtSampler(pmt.create("cray", telemetry=tel), interval_s=1.0)
        sampler.start()
        node.gpus[0].set_load(1.0, 1.0)
        clock.advance(4.2)  # one coarse advance crossing four boundaries
        sampler.stop()
        assert [r.timestamp for r in sampler.rows] == [
            0.0, 1.0, 2.0, 3.0, 4.0, 4.2,
        ]
        # Under load, each boundary must read its *own* counter value —
        # not the advance-end value repeated (the old behaviour).
        joules = [r.joules for r in sampler.rows]
        assert all(b > a for a, b in zip(joules, joules[1:]))

    def test_segment_sums_telescope_to_whole_run_energy(self, clock, lumi):
        node, tel = lumi
        meter = pmt.create("cray", telemetry=tel)
        sampler = PmtSampler(meter, interval_s=1.0)
        node.gpus[0].set_load(0.8, 0.5)

        sampler.start()
        clock.advance(2.5)  # stop mid-interval
        sampler.stop()
        first_rows = list(sampler.rows)

        sampler.start()  # re-arm immediately: segments are contiguous
        clock.advance(2.5)
        sampler.stop()
        second_rows = sampler.rows[len(first_rows):]

        seg1 = first_rows[-1].joules - first_rows[0].joules
        seg2 = second_rows[-1].joules - second_rows[0].joules
        whole = node.energy_between(0.0, 5.0)
        assert seg1 + seg2 == pytest.approx(whole, rel=1e-6)

    def test_mid_advance_rows_split_region_energy(self, clock, lumi):
        # A region boundary falling inside a coarse advance gets its
        # energy split at the sampling boundary, not lumped at the end.
        node, tel = lumi
        sampler = PmtSampler(pmt.create("cray", telemetry=tel), interval_s=1.0)
        sampler.start()
        node.gpus[0].set_load(1.0, 1.0)
        clock.advance(3.0)
        sampler.stop()
        rows = sampler.rows
        deltas = [
            b.joules - a.joules for a, b in zip(rows, rows[1:])
        ]
        # Constant load: every full interval carries (nearly) equal energy.
        assert deltas[0] == pytest.approx(deltas[1], rel=0.05)
        assert deltas[1] == pytest.approx(deltas[2], rel=0.05)


class TestProfileWindowClipping:
    def _rows(self):
        # 100 W constant, cumulative joules to match.
        return [
            SampleRow(timestamp=float(t), joules=100.0 * t, watts=100.0)
            for t in range(5)
        ]

    def test_window_integrates_partial_intervals(self):
        stats = profile_stats(self._rows(), window=(0.25, 2.75))
        assert stats.duration_s == pytest.approx(2.5)
        assert stats.integrated_joules == pytest.approx(250.0)
        assert stats.counter_joules == pytest.approx(250.0)

    def test_adjacent_windows_tile_their_union(self):
        rows = self._rows()
        left = profile_stats(rows, window=(0.0, 1.3))
        right = profile_stats(rows, window=(1.3, 4.0))
        whole = profile_stats(rows)
        assert left.integrated_joules + right.integrated_joules == (
            pytest.approx(whole.integrated_joules)
        )
        assert left.counter_joules + right.counter_joules == (
            pytest.approx(whole.counter_joules)
        )

    def test_clip_rows_keeps_inner_samples(self):
        clipped = clip_rows(self._rows(), 0.5, 3.5)
        assert [r.timestamp for r in clipped] == [0.5, 1.0, 2.0, 3.0, 3.5]

    def test_interpolation_refuses_extrapolation(self):
        with pytest.raises(AnalysisError):
            interpolated_row(self._rows(), -1.0)
        with pytest.raises(AnalysisError):
            interpolated_row(self._rows(), 99.0)

    def test_empty_window_rejected(self):
        with pytest.raises(AnalysisError):
            clip_rows(self._rows(), 2.0, 2.0)


class TestNvmlMillijouleResidual:
    def test_reads_telescope_without_drift(self, clock, cscs):
        node, tel = cscs
        gpu = tel.nvml[0]
        node.gpus[0].set_load(0.7, 0.4)
        values = []
        # Irregular read spacing maximises the truncation exposure.
        for dt in (0.013, 0.4, 0.0071, 1.3, 0.09, 2.0, 0.033) * 8:
            clock.advance(dt)
            values.append(gpu.total_energy_consumption_mj(clock.now))
        assert values == sorted(values)  # monotone across every read
        # The final read agrees with the exact accumulator within 1 mJ —
        # no residual was lost however many reads happened in between.
        exact_mj = gpu.counter.read_exact(clock.now).joules * 1e3
        assert abs(values[-1] - exact_mj) <= 1.0

    def test_read_exact_skips_quantization_only(self, clock, cscs):
        node, tel = cscs
        gpu = tel.nvml[0]
        node.gpus[0].set_load(1.0, 1.0)
        clock.advance(3.0)
        quantized = gpu.counter.read(clock.now).joules
        exact = gpu.counter.read_exact(clock.now).joules
        assert quantized <= exact < quantized + 1e-3  # within one quantum


class TestRaplWrapLanding:
    MAX_UJ = int(RAPL_MAX_ENERGY_RANGE_J * 1e6)

    def test_plain_wraparound(self):
        assert RaplPackage.unwrap(self.MAX_UJ - 100, 400) == 500

    def test_zero_delta_short_interval_is_zero(self):
        # Below the safe interval an unchanged register may really be a
        # freeze; unwrap itself credits nothing (the stuck detector rules).
        assert (
            RaplPackage.unwrap(123, 123, elapsed_s=1.0, max_power_watts=200.0)
            == 0
        )

    def test_exact_wrap_landing_credits_one_range(self):
        safe = RaplPackage.max_safe_read_interval_s(200.0)
        assert (
            RaplPackage.unwrap(
                123, 123, elapsed_s=safe, max_power_watts=200.0
            )
            == self.MAX_UJ
        )

    def test_wrap_landing_beats_overlong_interval_rejection(self):
        # The disambiguation must run before the unsafe-interval rejection:
        # delta == 0 over a long interval IS the wrap, not an error.
        safe = RaplPackage.max_safe_read_interval_s(200.0)
        assert (
            RaplPackage.unwrap(
                50, 50, elapsed_s=1.5 * safe, max_power_watts=200.0
            )
            == self.MAX_UJ
        )

    def test_nonzero_delta_overlong_interval_still_rejected(self):
        safe = RaplPackage.max_safe_read_interval_s(200.0)
        with pytest.raises(SensorError):
            RaplPackage.unwrap(
                50, 51, elapsed_s=1.5 * safe, max_power_watts=200.0
            )

    def test_backend_counts_wrap_landings_not_suspects(self, clock, cscs):
        node, tel = cscs
        meter = pmt.create("rapl", telemetry=tel)
        meter.read()
        raws = iter([1_000_000, 1_000_000])
        meter._raw_uj = lambda: next(raws)
        safe = meter._safe_interval_s
        clock.advance(1.2 * safe)
        with pytest.warns(UserWarning, match="wraparound"):
            meter.read()  # nonzero delta over an unsafe interval: suspect
        clock.advance(1.2 * safe)
        state = meter.read()
        assert meter.wrap_boundary_landings == 1
        # Within twice the safe bound the single wrap is certain: quality
        # stays ok and the suspect counter untouched by the landing.
        assert state.primary.quality == "ok"
        assert meter.suspect_intervals == 1  # only the first (1.2x) read

    def test_backend_flags_multiwrap_landing_suspect(self, clock, cscs):
        node, tel = cscs
        meter = pmt.create("rapl", telemetry=tel)
        meter.read()
        first = meter._raw_uj()
        meter._raw_uj = lambda: first
        clock.advance(2.5 * meter._safe_interval_s)
        state = meter.read()
        assert meter.wrap_boundary_landings == 1
        assert state.primary.quality == "suspect"
