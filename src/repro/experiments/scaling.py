"""Weak-scaling study (extension experiment).

The paper runs 8-48 cards at constant particles-per-GPU (weak scaling)
but only reports total energy.  This experiment extracts the quantities a
scaling study cares about: time per step, energy per card, and the
communication share of DomainDecompAndSync — quantifying how close the
simulated runs are to ideal weak scaling and where the deviation comes
from (the log p collectives and growing halo surfaces).

The sweep itself runs on the campaign engine: each card count is one
independent run key, executed serially or across worker shards and
cached content-addressed, then merged back in card-count order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.aggregate import function_seconds
from repro.analysis.breakdown import device_breakdown
from repro.campaign.executor import ProgressFn, execute
from repro.campaign.merge import merge_weak_scaling
from repro.campaign.spec import CampaignSpec, expand
from repro.campaign.store import ResultStore
from repro.config import SUBSONIC_TURBULENCE, SystemConfig, TestCaseConfig
from repro.instrumentation.records import RunMeasurements


@dataclass(frozen=True)
class WeakScalingPoint:
    """One scale of the weak-scaling sweep."""

    num_cards: int
    num_ranks: int
    seconds_per_step: float
    joules_per_card: float
    total_joules: float
    domain_sync_share: float

    @property
    def label(self) -> str:
        return f"{self.num_cards} cards / {self.num_ranks} ranks"


def scaling_point(run: RunMeasurements, num_cards: int) -> WeakScalingPoint:
    """Extract one card count's scaling quantities from its measurements."""
    total = device_breakdown(run).total_joules
    seconds = function_seconds(run)
    step_time = run.app_seconds / run.num_steps
    domain_share = seconds["DomainDecompAndSync"] / sum(seconds.values())
    return WeakScalingPoint(
        num_cards=num_cards,
        num_ranks=run.num_ranks,
        seconds_per_step=step_time,
        joules_per_card=total / num_cards,
        total_joules=total,
        domain_sync_share=domain_share,
    )


def weak_scaling_spec(
    system: SystemConfig,
    card_counts: tuple[int, ...],
    test_case: TestCaseConfig = SUBSONIC_TURBULENCE,
    num_steps: int = 100,
    seed: int = 0,
) -> CampaignSpec:
    """The weak-scaling sweep as a declarative campaign."""
    return CampaignSpec(
        name="weak-scaling",
        systems=(system.name,),
        test_cases=(test_case.name,),
        card_counts=tuple(card_counts),
        num_steps=num_steps,
        seeds=(seed,),
    )


def weak_scaling_series(
    system: SystemConfig,
    card_counts: tuple[int, ...],
    test_case: TestCaseConfig = SUBSONIC_TURBULENCE,
    num_steps: int = 100,
    seed: int = 0,
    workers: int = 1,
    store: ResultStore | None = None,
    progress: ProgressFn | None = None,
) -> list[WeakScalingPoint]:
    """Run the sweep and extract the scaling quantities."""
    spec = weak_scaling_spec(
        system, card_counts, test_case=test_case, num_steps=num_steps, seed=seed
    )
    results, _ = execute(
        expand(spec), store=store, workers=workers, progress=progress
    )
    return merge_weak_scaling(results)


def weak_scaling_table(points: list[WeakScalingPoint]) -> str:
    """Render the sweep as a text table."""
    lines = [
        f"{'cards':>6} {'ranks':>6} {'s/step':>8} {'MJ/card':>9} "
        f"{'total MJ':>9} {'domain %':>9}"
    ]
    for p in points:
        lines.append(
            f"{p.num_cards:>6} {p.num_ranks:>6} {p.seconds_per_step:>8.2f} "
            f"{p.joules_per_card / 1e6:>9.4f} {p.total_joules / 1e6:>9.2f} "
            f"{p.domain_sync_share:>9.1%}"
        )
    return "\n".join(lines)
