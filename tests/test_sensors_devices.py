"""Tests for the concrete sensor families and node telemetry assembly."""

import pytest

from repro.config import CSCS_A100, LUMI_G, MINIHPC
from repro.errors import SensorError
from repro.hardware import Node, VirtualClock
from repro.sensors import (
    IpmiNode,
    NodeTelemetry,
    NvmlGpu,
    PmCounters,
    RaplPackage,
    RocmCard,
    VirtualSysfs,
)
from repro.sensors.pm_counters import PM_COUNTERS_DIR, parse_pm_file
from repro.sensors.rapl import RAPL_MAX_ENERGY_RANGE_J


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def lumi_node(clock):
    return Node("n0", clock, LUMI_G.node_spec)


@pytest.fixture
def cscs_node(clock):
    return Node("n0", clock, CSCS_A100.node_spec)


class TestVirtualSysfs:
    def test_register_and_read(self, clock):
        fs = VirtualSysfs(clock)
        fs.register("/sys/test", lambda t: f"value at {t}")
        clock.advance(2.0)
        assert fs.read("/sys/test") == "value at 2.0"

    def test_missing_path(self, clock):
        fs = VirtualSysfs(clock)
        with pytest.raises(SensorError):
            fs.read("/nope")

    def test_duplicate_registration_rejected(self, clock):
        fs = VirtualSysfs(clock)
        fs.register("/sys/test", lambda t: "x")
        with pytest.raises(SensorError):
            fs.register("/sys/test", lambda t: "y")

    def test_exists_and_listdir(self, clock):
        fs = VirtualSysfs(clock)
        fs.register("/sys/a/one", lambda t: "1")
        fs.register("/sys/a/two", lambda t: "2")
        fs.register("/sys/b/other", lambda t: "3")
        assert fs.exists("/sys/a/one")
        assert fs.listdir("/sys/a") == ["/sys/a/one", "/sys/a/two"]


class TestPmCounters:
    def test_file_set_lumi(self, clock, lumi_node):
        fs = VirtualSysfs(clock)
        PmCounters(lumi_node, fs, include_memory=True)
        for stem in ("power", "energy", "cpu_power", "cpu_energy",
                     "memory_power", "memory_energy"):
            assert fs.exists(f"{PM_COUNTERS_DIR}/{stem}")
        # 4 MI250X cards -> accel0..accel3 (not accel0..accel7).
        assert fs.exists(f"{PM_COUNTERS_DIR}/accel3_power")
        assert not fs.exists(f"{PM_COUNTERS_DIR}/accel4_power")

    def test_no_memory_files_when_absent(self, clock, cscs_node):
        fs = VirtualSysfs(clock)
        pm = PmCounters(cscs_node, fs, include_memory=False)
        assert not fs.exists(f"{PM_COUNTERS_DIR}/memory_power")
        with pytest.raises(SensorError):
            pm.read_memory(0.0)

    def test_file_format(self, clock, lumi_node):
        fs = VirtualSysfs(clock)
        PmCounters(lumi_node, fs)
        clock.advance(1.0)
        value, unit, ts = parse_pm_file(fs.read(f"{PM_COUNTERS_DIR}/power"))
        assert unit == "W"
        assert value == pytest.approx(lumi_node.idle_power(), abs=2.0)
        assert ts == pytest.approx(1.0)

    def test_energy_accumulates(self, clock, lumi_node):
        fs = VirtualSysfs(clock)
        pm = PmCounters(lumi_node, fs)
        base = pm.read_node(0.0).joules
        clock.advance(10.0)
        delta = pm.read_node(10.0).joules - base
        assert delta == pytest.approx(lumi_node.idle_power() * 10.0, rel=0.02)

    def test_counters_start_at_nonzero_base(self, clock, lumi_node):
        """pm_counters accumulate since boot: never assume a zero base."""
        fs = VirtualSysfs(clock)
        pm = PmCounters(lumi_node, fs, seed=3)
        assert pm.read_node(0.0).joules > 0

    def test_accel_counter_covers_whole_card(self, clock, lumi_node):
        """One accel file covers both GCDs of an MI250X."""
        fs = VirtualSysfs(clock)
        pm = PmCounters(lumi_node, fs)
        lumi_node.gpus[0].set_load(1.0, 1.0)  # only GCD 0 of card 0 busy
        clock.advance(5.0)
        busy = pm.read_accel(0, clock.now).watts
        idle = pm.read_accel(1, clock.now).watts
        both_idle = 2 * lumi_node.gpus[2].power_now() + 16.0
        assert idle == pytest.approx(both_idle, abs=2.0)
        assert busy > idle

    def test_bad_accel_index(self, clock, lumi_node):
        fs = VirtualSysfs(clock)
        pm = PmCounters(lumi_node, fs)
        with pytest.raises(SensorError):
            pm.read_accel(9, 0.0)

    def test_parse_rejects_garbage(self):
        with pytest.raises(SensorError):
            parse_pm_file("not a pm file")


class TestRapl:
    def test_energy_uj_file(self, clock, cscs_node):
        fs = VirtualSysfs(clock)
        rapl = RaplPackage(cscs_node.cpu, fs)
        base = int(fs.read("/sys/class/powercap/intel-rapl:0/energy_uj"))
        clock.advance(2.0)
        uj = int(fs.read("/sys/class/powercap/intel-rapl:0/energy_uj"))
        expected = cscs_node.cpu.power_now() * 2.0 * 1e6
        assert RaplPackage.unwrap(base, uj) == pytest.approx(expected, rel=0.02)

    def test_max_range_file(self, clock, cscs_node):
        fs = VirtualSysfs(clock)
        RaplPackage(cscs_node.cpu, fs)
        max_uj = int(fs.read("/sys/class/powercap/intel-rapl:0/max_energy_range_uj"))
        assert max_uj == int(RAPL_MAX_ENERGY_RANGE_J * 1e6)

    def test_wraparound_occurs(self, clock, cscs_node):
        fs = VirtualSysfs(clock)
        rapl = RaplPackage(cscs_node.cpu, fs)
        cscs_node.cpu.set_load(1.0, 1.0)
        power = cscs_node.cpu.power_now()
        wrap_time = RAPL_MAX_ENERGY_RANGE_J / power
        clock.advance(wrap_time * 1.5)
        uj = rapl.energy_uj(clock.now)
        true_uj = power * clock.now * 1e6
        assert uj < true_uj  # wrapped at least once

    def test_unwrap(self):
        max_uj = int(RAPL_MAX_ENERGY_RANGE_J * 1e6)
        assert RaplPackage.unwrap(100, 300) == 200
        assert RaplPackage.unwrap(max_uj - 50, 150) == 200

    def test_unwrap_roundtrip_through_wrap(self, clock, cscs_node):
        fs = VirtualSysfs(clock)
        rapl = RaplPackage(cscs_node.cpu, fs)
        cscs_node.cpu.set_load(1.0, 1.0)
        power = cscs_node.cpu.power_now()
        t0 = RAPL_MAX_ENERGY_RANGE_J / power * 0.9
        clock.advance(t0)
        before = rapl.energy_uj(clock.now)
        clock.advance(t0 * 0.3)
        after = rapl.energy_uj(clock.now)
        delta_j = RaplPackage.unwrap(before, after) * 1e-6
        assert delta_j == pytest.approx(power * t0 * 0.3, rel=0.02)


class TestNvml:
    def test_power_usage_near_truth(self, clock, cscs_node):
        nvml = NvmlGpu(cscs_node.cards[0], 0)
        clock.advance(1.0)
        mw = nvml.power_usage_mw(clock.now)
        truth_mw = cscs_node.cards[0].power_at(clock.now) * 1e3
        assert mw == pytest.approx(truth_mw, rel=0.25)  # noisy estimate

    def test_energy_counter_monotone_and_accurate(self, clock, cscs_node):
        nvml = NvmlGpu(cscs_node.cards[0], 0)
        cscs_node.gpus[0].set_load(1.0, 1.0)
        clock.advance(30.0)
        mj = nvml.total_energy_consumption_mj(clock.now)
        truth_mj = cscs_node.cards[0].energy_between(0, clock.now) * 1e3
        # Noise averages out over 600 ticks.
        assert mj == pytest.approx(truth_mj, rel=0.02)

    def test_two_cards_independent_noise(self, clock, cscs_node):
        a = NvmlGpu(cscs_node.cards[0], 0)
        b = NvmlGpu(cscs_node.cards[1], 1)
        clock.advance(1.0)
        assert a.power_usage_mw(clock.now) != b.power_usage_mw(clock.now)


class TestRocm:
    def test_hwmon_file(self, clock, lumi_node):
        fs = VirtualSysfs(clock)
        rocm = RocmCard(lumi_node.cards[0], 0, fs)
        clock.advance(1.0)
        uw = int(fs.read(rocm.hwmon_path))
        truth_uw = lumi_node.cards[0].power_at(clock.now) * 1e6
        assert uw == pytest.approx(truth_uw, rel=0.1)


class TestIpmi:
    def test_slow_cadence(self, clock, cscs_node):
        ipmi = IpmiNode(cscs_node)
        clock.advance(0.5)
        assert ipmi.read(clock.now).timestamp == 0.0
        clock.advance(0.6)
        assert ipmi.read(clock.now).timestamp == 1.0


class TestNodeTelemetry:
    def test_lumi_gets_pm_counters(self, clock, lumi_node):
        tel = NodeTelemetry(lumi_node, LUMI_G, clock)
        assert tel.pm_counters is not None
        assert tel.nvml == []
        assert tel.rapl is None
        assert len(tel.rocm) == 4
        assert tel.slurm_plugin_name == "pm_counters"

    def test_cscs_gets_nvml_rapl_ipmi(self, clock, cscs_node):
        tel = NodeTelemetry(cscs_node, CSCS_A100, clock)
        assert tel.pm_counters is None
        assert len(tel.nvml) == 4
        assert tel.rapl is not None
        assert tel.ipmi is not None
        assert tel.slurm_plugin_name == "ipmi"

    def test_minihpc_card_count(self, clock):
        node = Node("n0", clock, MINIHPC.node_spec)
        tel = NodeTelemetry(node, MINIHPC, clock)
        assert len(tel.nvml) == 2

    def test_slurm_energy_reading(self, clock, lumi_node):
        tel = NodeTelemetry(lumi_node, LUMI_G, clock)
        base = tel.slurm_energy_reading(0.0).joules
        clock.advance(5.0)
        delta = tel.slurm_energy_reading(clock.now).joules - base
        assert delta == pytest.approx(lumi_node.idle_power() * 5.0, rel=0.05)
