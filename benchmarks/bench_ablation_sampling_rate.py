"""Ablation: measurement error vs sensor refresh cadence.

Design question from DESIGN.md: is 10 Hz pm_counters telemetry adequate
for per-function energy measurement?  Sweep the controller refresh period
over a realistic power trace (alternating compute/comm phases of SPH step
structure) and report the relative error of counter-based region energy
against ground truth, for region lengths matching short and long loop
functions.
"""

import numpy as np
from conftest import write_result

from repro.hardware import PowerTrace
from repro.sensors import SampledEnergyCounter

PERIODS_S = (1.0, 0.1, 0.05, 0.01)
REGION_SECONDS = (0.05, 0.5, 5.0, 50.0)


def _build_sph_like_trace(seed: int = 7) -> PowerTrace:
    """Alternating high/low power phases shaped like an SPH step."""
    rng = np.random.default_rng(seed)
    trace = PowerTrace(initial_watts=60.0)
    t = 0.0
    for _ in range(400):
        t += float(rng.uniform(0.2, 2.5))
        trace.set_power(t, float(rng.uniform(250.0, 400.0)))  # kernel
        t += float(rng.uniform(0.05, 0.6))
        trace.set_power(t, float(rng.uniform(55.0, 90.0)))  # comm / idle
    return trace


def _sweep(periods=PERIODS_S, regions=REGION_SECONDS, n_starts=40):
    trace = _build_sph_like_trace()
    rows = {}
    for period in periods:
        counter = SampledEnergyCounter(
            trace,
            refresh_period_s=period,
            watts_quantum=1.0,
            energy_quantum=1.0,
        )
        errors = {}
        for region in regions:
            rel = []
            for start in np.linspace(5.0, 500.0, n_starts):
                measured = (
                    counter.read(start + region).joules
                    - counter.read(start).joules
                )
                truth = trace.energy_between(start, start + region)
                if truth > 0:
                    rel.append(abs(measured - truth) / truth)
            errors[region] = float(np.median(rel))
        rows[period] = errors
    return rows


def bench_sampling_rate_ablation(benchmark, results_dir):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    lines = [
        "Median relative error of counter-based region energy",
        f"{'period [s]':>11} " + " ".join(f"{r:>9.2f}s" for r in REGION_SECONDS),
    ]
    for period, errors in rows.items():
        lines.append(
            f"{period:>11.2f} "
            + " ".join(f"{errors[r]:>10.2%}" for r in REGION_SECONDS)
        )

    # Faster sampling -> lower error for short regions.
    assert rows[0.01][0.05] < rows[1.0][0.05]
    # 10 Hz pm_counters resolve multi-second functions to a few percent...
    assert rows[0.1][5.0] < 0.05
    assert rows[0.1][50.0] < 0.01
    # ...but sub-100 ms regions are essentially invisible at 10 Hz.
    assert rows[0.1][0.05] > 0.10

    lines.append("")
    lines.append(
        "Conclusion: 10 Hz telemetry is adequate for the paper's multi-"
        "second loop functions; sub-100 ms regions need faster sensors."
    )
    write_result(results_dir, "ablation_sampling_rate", "\n".join(lines))


def bench_smoke_sampling_rate(results_dir):
    periods = (1.0, 0.01)
    regions = (0.05, 5.0)
    rows = _sweep(periods=periods, regions=regions, n_starts=10)

    # Faster sampling -> lower error for short regions; multi-second
    # regions are well-resolved even at slow cadences.
    assert rows[0.01][0.05] < rows[1.0][0.05]
    assert rows[0.01][5.0] < 0.05

    lines = [
        "Median relative error of counter-based region energy (smoke)",
        f"{'period [s]':>11} " + " ".join(f"{r:>9.2f}s" for r in regions),
    ]
    for period, errors in rows.items():
        lines.append(
            f"{period:>11.2f} "
            + " ".join(f"{errors[r]:>10.2%}" for r in regions)
        )
    write_result(results_dir, "ablation_sampling_rate_smoke", "\n".join(lines))
