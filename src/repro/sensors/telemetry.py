"""Per-node telemetry assembly.

:class:`NodeTelemetry` instantiates the sensor set a given system actually
has (Table 1 semantics):

* **LUMI-G** (``cray`` backend): full pm_counters set — node, CPU, memory
  and per-card accelerator counters, all through the virtual sysfs.
* **CSCS-A100 / miniHPC** (``nvml`` backend): NVML per-card telemetry plus
  a RAPL package counter for the CPU and an IPMI node sensor for Slurm.
  No memory sensor — which is why Figure 2 folds memory into "Other" on
  those systems.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.errors import SensorError
from repro.hardware.clock import VirtualClock
from repro.hardware.node import Node
from repro.sensors.ipmi import IpmiNode
from repro.sensors.nvml import NvmlGpu
from repro.sensors.pm_counters import PmCounters
from repro.sensors.rapl import RaplPackage
from repro.sensors.rocm import RocmCard
from repro.sensors.sysfs import VirtualSysfs


class NodeTelemetry:
    """All the sensors of one node, as its platform provides them."""

    def __init__(
        self,
        node: Node,
        system: SystemConfig,
        clock: VirtualClock,
        seed: int = 0,
    ) -> None:
        self.node = node
        self.system = system
        self.sysfs = VirtualSysfs(clock)
        self.pm_counters: PmCounters | None = None
        self.nvml: list[NvmlGpu] = []
        self.rocm: list[RocmCard] = []
        self.rapl: RaplPackage | None = None
        self.ipmi: IpmiNode | None = None

        if system.pmt_backend == "cray":
            self.pm_counters = PmCounters(
                node,
                self.sysfs,
                include_memory=system.has_memory_sensor,
                seed=seed,
            )
            # HPE/Cray MI250X nodes also expose ROCm hwmon files.
            self.rocm = [
                RocmCard(card, i, self.sysfs, seed=seed)
                for i, card in enumerate(node.cards)
            ]
        else:
            self.nvml = [
                NvmlGpu(card, i, seed=seed) for i, card in enumerate(node.cards)
            ]
            self.rapl = RaplPackage(node.cpu, self.sysfs, seed=seed)
            self.ipmi = IpmiNode(node, seed=seed)

    # -- the node-level energy source Slurm accounting uses --------------------

    def slurm_energy_reading(self, t: float):
        """Node energy as Slurm's accounting plugin source sees it."""
        if self.pm_counters is not None:
            return self.pm_counters.read_node(t)
        if self.ipmi is not None:
            return self.ipmi.read(t)
        raise SensorError(
            f"node {self.node.name} has no node-level energy source"
        )

    @property
    def slurm_plugin_name(self) -> str:
        """The AcctGatherEnergy backend name this telemetry maps to."""
        return "pm_counters" if self.pm_counters is not None else "ipmi"
