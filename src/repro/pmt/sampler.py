"""Background PMT sampling (the toolkit's dump-thread equivalent).

The real PMT can spawn a measurement thread that samples the meter at a
fixed interval and appends ``timestamp joules watts`` lines to a dump file
for post-hoc analysis.  Under the virtual clock there are no threads; the
sampler instead registers a clock listener and takes a sample whenever
simulated time crosses a sampling boundary.  Because hardware state changes
only at phase boundaries (which advance the clock), listener-driven
sampling observes exactly what a free-running thread would.

The sampler also registers a *boundary provider* on the clock: a coarse
phase advance is split so the clock stops at every sampling boundary it
crosses, and each catch-up sample therefore reads the meter at its own
boundary time.  Without this, every tick inside a coarse advance would be
stamped with the advance's end time and the end-time counter values —
crediting ticks that belong to one start()/stop() segment (or one
instrumented region) to the next one.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.errors import MeasurementError
from repro.pmt.base import PMT
from repro.pmt.state import State


@dataclass(frozen=True)
class SampleRow:
    """One dump line: the meter state at a sampling boundary."""

    timestamp: float
    joules: float
    watts: float


@dataclass(frozen=True)
class SampleTick:
    """One structured sampling event, delivered to tick listeners.

    Carries the primary counter's values plus the full meter
    :class:`~repro.pmt.state.State`, so consumers (the time-series
    collector) can stream every named measurement — including degraded or
    held reads, which arrive tagged with their quality — without reaching
    into sampler internals.
    """

    #: Zero-based index of this tick within its start()/stop() segment.
    index: int
    #: How many times start() had been called when this tick fired (1-based).
    segment: int
    timestamp: float
    joules: float
    watts: float
    #: Primary measurement quality ("ok" unless the read was mitigated).
    quality: str
    #: The full meter state behind this tick.
    state: State

    @property
    def healthy(self) -> bool:
        """True when every measurement in the state is a plain read."""
        return all(m.quality == "ok" for m in self.state.measurements)


class PmtSampler:
    """Periodic sampler over one PMT instance.

    Parameters
    ----------
    meter:
        The PMT instance to sample.
    interval_s:
        Sampling period in (simulated) seconds.
    on_sample:
        Optional tick listener registered at construction (see
        :meth:`add_listener`).
    """

    def __init__(
        self,
        meter: PMT,
        interval_s: float = 1.0,
        on_sample: Callable[[SampleTick], None] | None = None,
    ) -> None:
        if interval_s <= 0:
            raise MeasurementError("sampler interval must be positive")
        self.meter = meter
        self.interval_s = float(interval_s)
        self.rows: list[SampleRow] = []
        self._listeners: list[Callable[[SampleTick], None]] = []
        if on_sample is not None:
            self._listeners.append(on_sample)
        self._running = False
        self._segment = 0
        self._tick_index = 0
        # Sampling boundaries are computed as ``start + k * interval`` from
        # an integer tick index — never by repeatedly adding the interval,
        # which accumulates floating-point drift over long runs.
        self._start_t = 0.0
        self._tick = 0
        # Boundary time of the most recent catch-up sample, used to avoid
        # a duplicate final row when stop() lands exactly on a boundary.
        self._last_boundary_t: float | None = None
        meter.clock.on_advance(self._on_advance)
        meter.clock.on_boundary(self._next_boundary)

    def start(self) -> None:
        """Begin (or resume) sampling; the first sample is taken immediately.

        Calling ``start()`` again after ``stop()`` re-arms the sampler at
        the current simulated time: the boundary grid restarts from *now*
        and new rows append after the earlier segment's rows.
        """
        if self._running:
            raise MeasurementError("sampler already running")
        self._running = True
        self._start_t = self.meter.clock.now
        self._tick = 1
        self._last_boundary_t = None
        self._segment += 1
        self._take_sample()

    def stop(self) -> None:
        """Stop sampling; a final sample is taken at stop time.

        If a catch-up sample already landed exactly at stop time (the stop
        coincides with a sampling boundary), no duplicate row is emitted.
        """
        if not self._running:
            raise MeasurementError("sampler is not running")
        now = self.meter.clock.now
        if self._last_boundary_t != now:
            self._take_sample()
        self._running = False

    def add_listener(self, listener: Callable[[SampleTick], None]) -> None:
        """Register a per-tick callback.

        Listeners fire on every sample — the start() sample, each boundary
        catch-up, and the final stop() sample — in registration order,
        after the row has been appended.  A listener must not advance the
        clock or re-enter the sampler.
        """
        self._listeners.append(listener)

    def _take_sample(self) -> None:
        state = self.meter.read()
        now = self.meter.clock.now
        self.rows.append(
            SampleRow(timestamp=now, joules=state.joules, watts=state.watts)
        )
        if self._listeners:
            tick = SampleTick(
                index=self._tick_index,
                segment=self._segment,
                timestamp=now,
                joules=state.joules,
                watts=state.watts,
                quality=state.primary.quality,
                state=state,
            )
            for listener in self._listeners:
                listener(tick)
        self._tick_index += 1

    def _next_boundary(self, now: float, target: float) -> float | None:
        """The clock's boundary-provider hook: our next pending boundary.

        Boundary ``k`` sits at ``start + k * interval`` exactly (an
        integer-tick grid, never repeated addition), so the provider and
        :meth:`_on_advance` always agree bit-for-bit on boundary times.
        """
        if not self._running:
            return None
        tick = self._tick
        boundary = self._start_t + tick * self.interval_s
        while boundary <= now:  # already consumed (or float fuzz): look ahead
            tick += 1
            boundary = self._start_t + tick * self.interval_s
        return boundary if boundary <= target else None

    def _on_advance(self, now: float) -> None:
        if not self._running:
            return
        # The boundary provider stops each advance at our next boundary, so
        # normally exactly one boundary is due per notification and the
        # meter read happens with ``clock.now`` *at* that boundary.  The
        # loop remains as a backstop for boundaries crossed without a stop.
        while True:
            boundary = self._start_t + self._tick * self.interval_s
            if boundary > now:
                break
            self._take_sample()
            self._last_boundary_t = boundary
            self._tick += 1

    # -- output ---------------------------------------------------------------

    def dump_lines(self) -> list[str]:
        """Dump-file lines in the toolkit's ``timestamp joules watts`` format."""
        lines = ["# timestamp_s joules watts"]
        lines += [
            f"{row.timestamp:.6f} {row.joules:.3f} {row.watts:.3f}"
            for row in self.rows
        ]
        return lines

    def write(self, path: str | Path) -> None:
        """Write the dump file."""
        Path(path).write_text("\n".join(self.dump_lines()) + "\n")
