"""Federated campaign queue: byte-identical drains and kill/steal recovery.

The acceptance properties of the lease-based federated work queue:

* a 4-worker federated drain of a 64-point campaign against one shared
  cache is **byte-identical** (cache file bytes, not just values) to the
  serial reference sweep;
* the union of the worker journals shows every key executed exactly
  once — zero lost, zero duplicated;
* SIGKILLing a lease holder mid-run loses nothing: its lease goes
  stale, a surviving worker steals it, and the campaign still finishes
  with every key archived exactly once;
* a warm federated drain executes zero simulation steps.

The result file records only deterministic quantities (point counts,
steps, per-frequency energies) so the determinism CI gate can diff it;
wall-clock timings and lease timing are asserted, not persisted.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

from conftest import write_result

from repro.campaign import CampaignSpec, ResultStore, execute, expand
from repro.campaign.queue import (
    FederationConfig,
    Journal,
    LeaseQueue,
    WorkerProfile,
    drain,
)
from repro.campaign.keys import run_key_hash

FREQS_MHZ = (1410.0, 1230.0, 1095.0, 1005.0)
SMOKE_SEEDS = tuple(range(16))  # 4 freqs x 16 seeds = 64 points
FULL_SEEDS = tuple(range(32))  # 4 freqs x 32 seeds = 128 points
NUM_STEPS = 2
WORKERS = 4


def _spec(seeds, side: int) -> CampaignSpec:
    return CampaignSpec(
        name="federation-bench",
        systems=("miniHPC",),
        test_cases=("Subsonic Turbulence",),
        card_counts=(2,),
        freqs_mhz=FREQS_MHZ,
        num_steps=NUM_STEPS,
        particles_per_rank=(float(side**3),),
        seeds=seeds,
    )


def _config(**overrides) -> FederationConfig:
    kwargs = dict(
        lease_ttl_s=30.0, heartbeat_s=0.5, retry_backoff_s=0.0, poll_s=0.01
    )
    kwargs.update(overrides)
    return FederationConfig(**kwargs)


def _store_bytes(store: ResultStore) -> dict[str, bytes]:
    return {path.name: path.read_bytes() for path in store.entries()}


def _blocker(root: str, digest: str, ready) -> None:
    """Claim one lease and hang without heartbeats (a worker to murder)."""
    queue = LeaseQueue(root, profile=WorkerProfile.local(token="victim"))
    lease = queue.try_acquire(digest)
    assert lease is not None
    ready.set()
    time.sleep(600)


def _mean_energy_by_freq(results) -> dict[float, float]:
    by_freq: dict[float, list[float]] = {}
    for key, result in results.items():
        by_freq.setdefault(key.gpu_freq_mhz, []).append(
            result.accounting.consumed_energy_joules
        )
    return {f: sum(v) / len(v) for f, v in sorted(by_freq.items())}


def _run_federation(results_dir, tmp_path, name, seeds, side):
    keys = expand(_spec(seeds, side))
    assert len(keys) >= 64

    # Serial reference sweep.
    serial_store = ResultStore(tmp_path / "serial")
    serial, serial_stats = execute(keys, store=serial_store)
    assert serial_stats.misses == len(keys)

    # 4-worker federated drain of the same spec into a fresh cache.
    fed_store = ResultStore(tmp_path / "federated")
    federated, fed_stats = execute(
        keys, store=fed_store, federate=WORKERS, federation=_config()
    )
    assert fed_stats.federated
    assert fed_stats.misses == len(keys)
    assert federated == serial, "federated sweep diverged from serial"
    assert _store_bytes(fed_store) == _store_bytes(serial_store), (
        "federated cache bytes differ from the serial reference"
    )

    # Journals: every key executed exactly once across all workers.
    digests = Journal.executed_digests(fed_store.root)
    assert len(digests) == len(keys), "lost runs"
    assert len(set(digests)) == len(keys), "duplicated runs"
    # How many workers got a share is scheduling-dependent (not
    # persisted: the result file must be deterministic) — but at least
    # one journal must exist and they must union to exactly the keys.
    journals = Journal.read_all(fed_store.root)
    assert sum(1 for lines in journals.values() if lines) >= 1

    # Warm federated drain: pure hits, zero steps, bytes untouched.
    before = _store_bytes(fed_store)
    warm, warm_stats = execute(
        keys, store=fed_store, federate=WORKERS, federation=_config()
    )
    assert warm_stats.hits == len(keys)
    assert warm_stats.executed_steps == 0
    assert warm == serial
    assert _store_bytes(fed_store) == before

    # Kill/steal: murder a lease holder, the drain must recover its key.
    kill_store = ResultStore(tmp_path / "killed")
    victim = keys[0]
    ctx = multiprocessing.get_context()
    ready = ctx.Event()
    blocker = ctx.Process(
        target=_blocker,
        args=(str(kill_store.root), run_key_hash(victim), ready),
    )
    blocker.start()
    assert ready.wait(timeout=60)
    os.kill(blocker.pid, signal.SIGKILL)
    blocker.join()
    time.sleep(0.6)  # let the abandoned lease cross its short TTL
    rescue_stats = drain(
        keys,
        kill_store,
        config=_config(lease_ttl_s=0.5, heartbeat_s=0.1),
        profile=WorkerProfile.local(token="rescuer"),
    )
    assert rescue_stats.steals >= 1, "the dead worker's lease was not stolen"
    assert rescue_stats.executed == len(keys), "kill/steal lost runs"
    kill_digests = Journal.executed_digests(kill_store.root)
    assert len(kill_digests) == len(set(kill_digests)) == len(keys)
    assert _store_bytes(kill_store) == _store_bytes(serial_store), (
        "recovery after SIGKILL diverged from the serial reference"
    )

    energies = _mean_energy_by_freq(serial)
    lines = [
        f"Federation {name}: {len(keys)} points "
        f"({len(FREQS_MHZ)} freqs x {len(seeds)} seeds, side {side}^3, "
        f"{NUM_STEPS} steps), {WORKERS} workers sharing one cache",
        f"serial == federated({WORKERS}) == post-SIGKILL recovery: "
        "byte-identical cache files",
        f"journals: {len(digests)} executed, 0 duplicated",
        f"kill/steal: 1 lease holder SIGKILLed, "
        f"{rescue_stats.steals} lease stolen, 0 runs lost",
        f"warm drain: {warm_stats.hits} hits, 0 steps executed",
        "",
        "Mean energy per run by frequency (J):",
    ]
    for freq, joules in energies.items():
        lines.append(f"  {freq:>6.0f} MHz  {joules:12.3f}")
    write_result(results_dir, name, "\n".join(lines))


def bench_smoke_federation(results_dir, tmp_path):
    """64-point federated drain (`make bench-smoke` / determinism gate)."""
    _run_federation(
        results_dir, tmp_path, "federation_smoke", SMOKE_SEEDS, side=30
    )


def bench_federation_full(results_dir, tmp_path):
    """128-point federated drain at a larger problem size (`make bench`)."""
    _run_federation(results_dir, tmp_path, "federation", FULL_SEEDS, side=40)
