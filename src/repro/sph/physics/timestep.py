"""Time-step selection (the ``Timestep`` loop function).

Courant condition on the signal velocity plus an acceleration criterion::

    dt_courant = C_cour * min_i ( 2 h_i / v_sig_max,i )
    dt_accel   = C_acc  * min_i sqrt( h_i / |a_i| )
    dt         = min(dt_courant, dt_accel, growth_cap * dt_prev)

In the distributed code this minimum is a global MPI allreduce — one of
the reasons ``Timestep`` appears as a (cheap, communication-bound)
function in the Figure 3/5 breakdowns.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.sph.particles import ParticleSet

DEFAULT_COURANT = 0.2
DEFAULT_ACCEL = 0.25

#: dt may grow by at most this factor per step (SPH-EXA uses ~1.1).
GROWTH_CAP = 1.1


def compute_timestep(
    ps: ParticleSet,
    dt_prev: float | None = None,
    courant: float = DEFAULT_COURANT,
    accel_coeff: float = DEFAULT_ACCEL,
) -> float:
    """The next time step for the particle set."""
    v_sig = getattr(ps, "v_sig_max", None)
    if v_sig is None:
        raise SimulationError(
            "compute_timestep requires v_sig_max (run MomentumEnergy first)"
        )
    dt_courant = courant * float(np.min(2.0 * ps.h / np.maximum(v_sig, 1e-300)))
    acc_norm = np.linalg.norm(ps.acc, axis=1)
    with np.errstate(divide="ignore"):
        dt_accel = accel_coeff * float(
            np.sqrt(np.min(ps.h / np.maximum(acc_norm, 1e-300)))
        )
    dt = min(dt_courant, dt_accel)
    if dt_prev is not None and dt_prev > 0:
        dt = min(dt, GROWTH_CAP * dt_prev)
    if not np.isfinite(dt) or dt <= 0:
        raise SimulationError(f"invalid time step {dt!r}")
    return dt
