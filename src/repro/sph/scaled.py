"""The paper-scale instrumented SPH run.

Drives the simulated cluster through SPH-EXA's exact function sequence at
production particle counts (150 M / 80 M particles per rank), with the
performance model supplying per-rank durations and device loads, and the
PMT profiler attached to the function hooks:

* at each function's start every rank snapshots its PMT counters;
* each rank's measurement closes at *its own* completion time (no barrier
  in the measurement path — Section 2);
* functions with communication run as kernel sub-phase (GPU busy) followed
  by a comm sub-phase (GPU idle, NIC busy), with the measurement spanning
  both;
* records stay rank-local until one gather at the end of the run.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.instrumentation.profiler import EnergyProfiler
from repro.instrumentation.records import RunMeasurements
from repro.mpi.engine import RankWork, SpmdEngine
from repro.sph.perfmodel import SphPerformanceModel


class ScaledSphApplication:
    """One instrumented, paper-scale SPH-EXA execution."""

    def __init__(
        self,
        engine: SpmdEngine,
        profiler: EnergyProfiler,
        perfmodel: SphPerformanceModel,
        functions: tuple[str, ...],
        num_steps: int,
        test_case_name: str,
        instrumentation_overhead_s: float = 0.0,
    ) -> None:
        """``instrumentation_overhead_s`` models the host-side cost of one
        PMT read.  Because SPH-EXA runs entirely on the GPU and leaves the
        CPU free for profiling (Section 2), the two reads per region
        overlap with the GPU kernel: a function is only dilated when
        ``2 * overhead`` exceeds its kernel time.  The overhead ablation
        benchmark sweeps this to verify the paper's
        "performance ... is unaffected" claim and find its breaking point.
        """
        if num_steps <= 0:
            raise SimulationError("num_steps must be positive")
        if not functions:
            raise SimulationError("empty function sequence")
        if instrumentation_overhead_s < 0:
            raise SimulationError("instrumentation overhead must be >= 0")
        self.engine = engine
        self.profiler = profiler
        self.perfmodel = perfmodel
        self.functions = functions
        self.num_steps = num_steps
        self.test_case_name = test_case_name
        self.instrumentation_overhead_s = instrumentation_overhead_s

    def _run_function(self, function: str, step: int) -> None:
        placement = self.engine.placement
        phases = [
            self.perfmodel.phases(
                function, placement.gpu_of(rank), rank, step
            )
            for rank in range(placement.size)
        ]
        has_comm = any(ph.comm_seconds > 0 for ph in phases)

        # Host-side measurement reads overlap with the GPU kernel; only
        # their uncovered remainder dilates the function.
        read_cost = 2.0 * self.instrumentation_overhead_s
        kernel_works = [
            RankWork(
                duration=max(ph.kernel_seconds, read_cost),
                gpu_compute=ph.gpu_compute,
                gpu_memory=ph.gpu_memory,
                cpu_share=ph.cpu_share,
                mem_share=ph.mem_share,
                nic_share=0.02,
            )
            for ph in phases
        ]

        def close(rank: int, name: str = function) -> None:
            self.profiler.end(rank, name)

        self.engine.run_phase(
            kernel_works,
            on_start=self.profiler.begin,
            on_end=None if has_comm else close,
        )
        if has_comm:
            comm_works = [
                RankWork(
                    duration=ph.comm_seconds,
                    gpu_compute=0.0,
                    gpu_memory=0.0,
                    cpu_share=ph.cpu_share,
                    mem_share=0.05,
                    nic_share=ph.nic_share,
                )
                for ph in phases
            ]
            self.engine.run_phase(comm_works, on_end=close)

    def run(self) -> RunMeasurements:
        """Execute all steps and return the gathered measurements."""
        self.profiler.start_app()
        for step in range(self.num_steps):
            for function in self.functions:
                self._run_function(function, step)
        self.profiler.end_app()
        return self.profiler.gather(
            test_case=self.test_case_name,
            num_steps=self.num_steps,
            particles_per_rank=self.perfmodel.n,
        )
