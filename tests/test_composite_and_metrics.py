"""Tests for the composite PMT backend and the efficiency metrics."""

import pytest

import repro.pmt as pmt
from repro.analysis.metrics import (
    EfficiencyMetrics,
    pareto_front,
    rank_operating_points,
    run_metrics,
)
from repro.config import CSCS_A100, SUBSONIC_TURBULENCE
from repro.errors import AnalysisError, BackendError
from repro.experiments.runner import run_scaled_experiment
from repro.hardware import Node, VirtualClock
from repro.pmt import PMT
from repro.sensors import NodeTelemetry


@pytest.fixture
def node_stack():
    clock = VirtualClock()
    node = Node("n0", clock, CSCS_A100.node_spec)
    telemetry = NodeTelemetry(node, CSCS_A100, clock)
    return clock, node, telemetry


class TestCompositeBackend:
    def test_registered(self):
        assert "composite" in pmt.available_backends()

    def test_primary_is_sum_of_children(self, node_stack):
        clock, node, telemetry = node_stack
        gpu = pmt.create("nvml", telemetry=telemetry, device_index=0)
        cpu = pmt.create("rapl", telemetry=telemetry)
        meter = pmt.create("composite", meters={"gpu0": gpu, "cpu": cpu})

        start = meter.read()
        node.gpus[0].set_load(1.0, 0.8)
        node.cpu.set_load(0.5, 0.3)
        clock.advance(20.0)
        node.all_idle()
        end = meter.read()

        total = PMT.joules(start, end)
        per_child = PMT.joules(start, end, "gpu0.gpu0") + PMT.joules(
            start, end, "cpu.package-0"
        )
        assert total == pytest.approx(per_child, rel=1e-9)
        truth = node.cards[0].energy_between(0, 20.0) + node.cpu.energy_between(
            0, 20.0
        )
        assert total == pytest.approx(truth, rel=0.05)

    def test_child_names_prefixed(self, node_stack):
        _, _, telemetry = node_stack
        gpu = pmt.create("nvml", telemetry=telemetry, device_index=1)
        meter = pmt.create("composite", meters={"g": gpu})
        assert meter.read().names() == ("total", "g.gpu1")
        assert meter.children == ("g",)

    def test_empty_rejected(self):
        with pytest.raises(BackendError):
            pmt.create("composite", meters={})

    def test_mixed_clocks_rejected(self, node_stack):
        _, _, telemetry = node_stack
        gpu = pmt.create("nvml", telemetry=telemetry, device_index=0)
        other = pmt.create("dummy")  # its own private clock
        with pytest.raises(BackendError):
            pmt.create("composite", meters={"a": gpu, "b": other})


class TestEfficiencyMetrics:
    def test_derived_quantities(self):
        m = EfficiencyMetrics(energy_joules=100.0, seconds=4.0)
        assert m.edp == 400.0
        assert m.ed2p == 1600.0
        assert m.average_watts == 25.0

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            EfficiencyMetrics(energy_joules=-1.0, seconds=1.0)
        with pytest.raises(AnalysisError):
            EfficiencyMetrics(energy_joules=1.0, seconds=0.0)

    def test_run_metrics_from_experiment(self):
        result = run_scaled_experiment(
            CSCS_A100, SUBSONIC_TURBULENCE, 8, num_steps=3
        )
        m = run_metrics(result.run)
        assert m.energy_joules > 0
        assert m.seconds == pytest.approx(result.run.app_seconds)
        assert m.average_watts > 100  # 8 GPUs plus CPUs

    def test_ranking_objectives(self):
        fast_hungry = EfficiencyMetrics(energy_joules=200.0, seconds=1.0)
        slow_frugal = EfficiencyMetrics(energy_joules=100.0, seconds=3.0)
        table = {1410.0: fast_hungry, 1005.0: slow_frugal}
        assert rank_operating_points(table, "time")[0] == 1410.0
        assert rank_operating_points(table, "energy")[0] == 1005.0
        assert rank_operating_points(table, "edp")[0] == 1410.0  # 200 < 300
        assert rank_operating_points(table, "ed2p")[0] == 1410.0

    def test_ranking_unknown_objective(self):
        with pytest.raises(AnalysisError):
            rank_operating_points({}, "vibes")

    def test_pareto_front(self):
        table = {
            1410.0: EfficiencyMetrics(energy_joules=200.0, seconds=1.0),
            1200.0: EfficiencyMetrics(energy_joules=150.0, seconds=2.0),
            1005.0: EfficiencyMetrics(energy_joules=100.0, seconds=3.0),
            # Dominated: slower AND hungrier than the 1200 point.
            900.0: EfficiencyMetrics(energy_joules=180.0, seconds=4.0),
        }
        front = pareto_front(table)
        assert front == [1005.0, 1200.0, 1410.0]

    def test_pareto_single_point(self):
        table = {1410.0: EfficiencyMetrics(energy_joules=1.0, seconds=1.0)}
        assert pareto_front(table) == [1410.0]
