"""Evrard collapse initial conditions (Evrard 1988).

The standard cold-gas collapse test: a sphere of mass M and radius R with
density profile ``rho(r) = M / (2 pi R^2 r)`` and uniform specific internal
energy ``u0 = 0.05 G M / R``, at rest, in units G = M = R = 1.  Gravity
overwhelms pressure, the sphere collapses, bounces, and virializes —
exercising ``Gravity`` alongside the hydro kernels.

Sampling: enclosed mass is ``m(r) = M (r/R)^2``, so ``r = R sqrt(xi)`` with
uniform xi inverts the profile exactly; directions are isotropic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.sph.box import Box
from repro.sph.initial_conditions.turbulence import smoothing_from_density
from repro.sph.particles import ParticleSet


def make_evrard(
    n: int,
    radius: float = 1.0,
    total_mass: float = 1.0,
    u0: float = 0.05,
    n_target: int = 100,
    seed: int = 42,
) -> tuple[ParticleSet, Box]:
    """Build an ``n``-particle Evrard sphere (open box)."""
    if n < 8:
        raise SimulationError("Evrard sphere needs at least 8 particles")
    if radius <= 0 or total_mass <= 0 or u0 <= 0:
        raise SimulationError("radius, mass and u0 must be positive")
    rng = np.random.default_rng(seed)
    # Stratified radii reduce shot noise in the profile.
    xi = (np.arange(n) + rng.uniform(0.0, 1.0, size=n)) / n
    r = radius * np.sqrt(xi)
    # Isotropic directions.
    mu = rng.uniform(-1.0, 1.0, size=n)
    phi = rng.uniform(0.0, 2.0 * np.pi, size=n)
    sin_theta = np.sqrt(1.0 - mu**2)
    pos = np.stack(
        [r * sin_theta * np.cos(phi), r * sin_theta * np.sin(phi), r * mu],
        axis=1,
    )

    ps = ParticleSet(n)
    ps.pos = pos
    ps.mass[:] = total_mass / n
    rho = total_mass / (2.0 * np.pi * radius**2 * np.maximum(r, 1e-3 * radius))
    ps.rho = rho
    ps.u[:] = u0
    ps.h = smoothing_from_density(ps.mass, ps.rho, n_target)

    # Open box large enough for the bounce-and-expand phase.
    box = Box(length=8.0 * radius, periodic=False)
    return ps, box
