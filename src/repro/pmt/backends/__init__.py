"""Concrete PMT backends (importing a module registers its backend)."""
