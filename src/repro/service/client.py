"""Synchronous clients of the telemetry service.

The simulation stack is synchronous (the virtual clock advances inline
with the step loop), so publishers talk to the asyncio service over
plain blocking sockets:

* :class:`ServiceClient` — one framed-protocol session.  In ``wait``
  mode the server applies real backpressure by pausing socket reads, so
  ``publish`` blocks exactly when the tenant's write queue is saturated;
  in ``shed`` mode it never blocks and the ack ledger reports what was
  dropped;
* :class:`ServiceCollector` — a :class:`~repro.timeseries.collect.
  TimeseriesCollector` that *additionally* republishes every sampler
  tick to a service, batched per node.  It keeps the observational
  design of the PR 3 collector: it only reads tick payloads already
  delivered to listeners, never touches meters or the clock, so a run
  publishes with **zero perturbation** — per-region energies and report
  artifacts are bit-identical with the publisher on or off;
* small HTTP/SSE helpers the ``watch --url`` CLI and the tests use.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Callable, Iterator

from repro.errors import ConfigurationError
from repro.service import protocol
from repro.service.protocol import ProtocolError
from repro.timeseries.collect import TimeseriesCollector
from repro.timeseries.spans import SpanRecorder
from repro.timeseries.store import SampleStore, quality_code


def _strip_scheme(url: str) -> str:
    text = url.strip()
    for prefix in ("telemetry://", "tcp://", "http://"):
        if text.startswith(prefix):
            return text[len(prefix) :]
    return text


def parse_endpoint(url: str, default_host: str = "127.0.0.1") -> tuple[str, int]:
    """``[scheme://]host:port[/tenant]`` -> the ``(host, port)`` pair.

    Accepted schemes: ``telemetry://``, ``tcp://``, ``http://`` (or
    none).  Any ``/tenant`` path is ignored here — use
    :func:`endpoint_tenant` to read it.
    """
    text, _, _ = _strip_scheme(url).partition("/")
    host, sep, port_text = text.rpartition(":")
    if not sep:
        raise ConfigurationError(
            f"endpoint {url!r} must look like host:port"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigurationError(f"endpoint {url!r} has no integer port") from None
    return (host or default_host), port


def endpoint_tenant(url: str) -> str | None:
    """The ``/tenant`` path of a ``telemetry://host:port/tenant`` URL.

    Returns ``None`` when the URL carries no path, so callers can fall
    back to an explicit ``--tenant`` flag.
    """
    _, _, path = _strip_scheme(url).partition("/")
    return path.strip("/") or None


class ServiceClient:
    """One framed-protocol publisher session."""

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str,
        source: str = "client",
        backpressure: str = "wait",
        timeout_s: float = 30.0,
    ) -> None:
        self.tenant = tenant
        self._decoder = protocol.FrameDecoder()
        self._frames: list[dict] = []
        self._sock = socket.create_connection((host, int(port)), timeout=timeout_s)
        self._closed = False
        self.published_batches = 0
        self.published_samples = 0
        self._send(protocol.hello_message(tenant, source, backpressure))

    # -- wire ----------------------------------------------------------------

    def _send(self, message: dict) -> None:
        if self._closed:
            raise ConfigurationError("client session is closed")
        self._sock.sendall(protocol.encode_frame(message))

    def _recv_frame(self) -> dict:
        while not self._frames:
            data = self._sock.recv(65536)
            if not data:
                raise ConfigurationError("service closed the connection")
            self._frames.extend(self._decoder.feed(data))
        return self._frames.pop(0)

    def _expect_ack(self) -> dict:
        frame = self._recv_frame()
        if frame.get("kind") == "error":
            raise ProtocolError(f"service error: {frame.get('message')}")
        if frame.get("kind") != "ack":
            raise ProtocolError(f"expected ack, got {frame.get('kind')!r}")
        return frame

    # -- publishing ----------------------------------------------------------

    def publish(self, node: int, channels: dict[str, dict[str, list]]) -> None:
        """Publish one batch message (fire-and-forget; ack via sync)."""
        message = protocol.batch_message(node, channels)
        self._send(message)
        self.published_batches += 1
        self.published_samples += protocol.batch_num_samples(message)

    def publish_encoded(self, frame: bytes, num_samples: int) -> None:
        """Publish a pre-encoded batch frame.

        Load harnesses pre-build their wire frames so that generation and
        JSON-encode cost stays out of the measured window; this sends one
        such frame verbatim (it must be an ``encode_frame``-framed batch
        for this client's tenant).
        """
        if self._closed:
            raise ConfigurationError("client session is closed")
        self._sock.sendall(frame)
        self.published_batches += 1
        self.published_samples += int(num_samples)

    def sync(self) -> dict:
        """Drain-and-ack barrier: the tenant's ledger after full apply."""
        self._send(protocol.sync_message())
        return self._expect_ack()

    def close(self) -> dict:
        """Send ``bye``, collect the final ledger ack, close the socket."""
        if self._closed:
            raise ConfigurationError("client session is already closed")
        self._send(protocol.bye_message())
        ack = self._expect_ack()
        self._closed = True
        self._sock.close()
        return ack

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        if not self._closed:
            self.close()


class ServiceCollector(TimeseriesCollector):
    """A collector that republishes its tick stream to a service.

    Ticks buffer per node and ship as one columnar batch every
    ``batch_ticks`` ticks (plus a final flush on :meth:`close`), so a
    10 Hz sampler costs one frame per ``batch_ticks`` sampling periods,
    not one syscall per sample.

    The publisher is a pure observer of the listener tap: the local
    store/spans (and therefore every report artifact derived from them)
    are identical to a plain :class:`TimeseriesCollector`'s, and nothing
    here can reach the profiler's meters — the zero-perturbation argument
    of the PR 3 collector carries over verbatim.
    """

    def __init__(
        self,
        client: ServiceClient,
        store: SampleStore | None = None,
        spans: SpanRecorder | None = None,
        batch_ticks: int = 32,
    ) -> None:
        super().__init__(store=store, spans=spans)
        if batch_ticks < 1:
            raise ConfigurationError("batch_ticks must be >= 1")
        self.client = client
        self.batch_ticks = int(batch_ticks)
        #: node -> channel -> column lists pending publication.
        self._buffer: dict[int, dict[str, dict[str, list]]] = {}
        self._buffered_ticks: dict[int, int] = {}

    def _on_tick(self, node_index: int, tick) -> None:
        super()._on_tick(node_index, tick)
        channels = self._buffer.setdefault(node_index, {})
        for m in tick.state.measurements:
            cols = channels.setdefault(
                m.name, {"t": [], "watts": [], "joules": [], "quality": []}
            )
            cols["t"].append(tick.timestamp)
            cols["watts"].append(m.watts)
            cols["joules"].append(m.joules)
            cols["quality"].append(quality_code(m.quality))
        count = self._buffered_ticks.get(node_index, 0) + 1
        if count >= self.batch_ticks:
            self._publish_node(node_index)
        else:
            self._buffered_ticks[node_index] = count

    def _publish_node(self, node_index: int) -> None:
        channels = self._buffer.pop(node_index, None)
        self._buffered_ticks[node_index] = 0
        if channels:
            self.client.publish(node_index, channels)

    def flush(self) -> None:
        """Publish every buffered tick (nodes in sorted order)."""
        for node_index in sorted(self._buffer):
            self._publish_node(node_index)

    def close(self) -> dict:
        """Flush, close the session, and return the service's ledger ack."""
        self.flush()
        return self.client.close()


# -- HTTP helpers ------------------------------------------------------------


def http_request(
    host: str,
    port: int,
    path: str,
    method: str = "GET",
    body: bytes | None = None,
    timeout_s: float = 30.0,
) -> tuple[int, bytes]:
    conn = http.client.HTTPConnection(host, int(port), timeout=timeout_s)
    try:
        conn.request(
            method,
            path,
            body=body,
            headers={"Content-Length": str(len(body))} if body else {},
        )
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def http_get_json(host: str, port: int, path: str, timeout_s: float = 30.0):
    status, data = http_request(host, port, path, timeout_s=timeout_s)
    if status != 200:
        raise ConfigurationError(
            f"GET {path} -> {status}: {data.decode(errors='replace')}"
        )
    return json.loads(data)


def http_get_text(host: str, port: int, path: str, timeout_s: float = 30.0) -> str:
    status, data = http_request(host, port, path, timeout_s=timeout_s)
    if status != 200:
        raise ConfigurationError(
            f"GET {path} -> {status}: {data.decode(errors='replace')}"
        )
    return data.decode()


def http_post_json(
    host: str, port: int, path: str, payload: dict | list, timeout_s: float = 30.0
):
    status, data = http_request(
        host,
        port,
        path,
        method="POST",
        body=json.dumps(payload, sort_keys=True).encode(),
        timeout_s=timeout_s,
    )
    if status != 200:
        raise ConfigurationError(
            f"POST {path} -> {status}: {data.decode(errors='replace')}"
        )
    return json.loads(data)


def watch_sse(
    host: str,
    port: int,
    tenant: str,
    every: int = 1,
    width: int = 48,
    max_frames: int | None = None,
    timeout_s: float = 30.0,
    on_connect: Callable[[], None] | None = None,
) -> Iterator[dict]:
    """Attach to the live-watch SSE stream; yields decoded frame payloads.

    ``max_frames`` bounds the subscription (the CLI's ``--frames``);
    ``None`` streams until the server closes or the socket times out.
    """
    sock = socket.create_connection((host, int(port)), timeout=timeout_s)
    try:
        request = (
            f"GET /watch?tenant={tenant}&every={int(every)}&width={int(width)} "
            "HTTP/1.1\r\n"
            f"Host: {host}\r\nAccept: text/event-stream\r\n\r\n"
        )
        sock.sendall(request.encode())
        fh = sock.makefile("rb")
        status_line = fh.readline().decode("latin-1")
        if " 200 " not in status_line:
            raise ConfigurationError(f"watch rejected: {status_line.strip()}")
        while fh.readline().strip():  # skip response headers
            pass
        if on_connect is not None:
            on_connect()
        yielded = 0
        while max_frames is None or yielded < max_frames:
            line = fh.readline()
            if not line:
                return
            text = line.decode().strip()
            if not text.startswith("data: "):
                continue
            yield json.loads(text[len("data: ") :])
            yielded += 1
    finally:
        sock.close()
