"""Structure-of-arrays particle storage.

SPH-EXA keeps particle fields as separate contiguous arrays (SoA) for
coalesced GPU access; we mirror the layout with NumPy arrays, which is
also the fast layout for vectorized host computation (see the
hpc-parallel guides: views not copies, contiguous access).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError


class ParticleSet:
    """All per-particle fields of a simulation.

    Fields
    ------
    pos, vel, acc : (n, 3) float64
        Positions, velocities, accelerations.
    mass, h, rho, u, p, c, du : (n,) float64
        Mass, smoothing length, density, specific internal energy,
        pressure, sound speed, internal-energy rate.
    div_v, curl_v : (n,) float64
        Velocity divergence/curl magnitude (for the Balsara AV switch).
    c_iad : (n, 3, 3) float64
        IAD correction matrices (inverse of the tau moment matrix).
    nc : (n,) int64
        Neighbor counts from the last neighbor search.
    """

    _VEC_FIELDS = ("pos", "vel", "acc")
    _SCALAR_FIELDS = ("mass", "h", "rho", "u", "p", "c", "du", "div_v", "curl_v")

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise SimulationError(f"particle count must be positive, got {n!r}")
        self.n = int(n)
        for name in self._VEC_FIELDS:
            setattr(self, name, np.zeros((self.n, 3), dtype=np.float64))
        for name in self._SCALAR_FIELDS:
            setattr(self, name, np.zeros(self.n, dtype=np.float64))
        self.c_iad = np.zeros((self.n, 3, 3), dtype=np.float64)
        self.nc = np.zeros(self.n, dtype=np.int64)

    # -- diagnostics -----------------------------------------------------------

    def total_mass(self) -> float:
        """Sum of particle masses."""
        return float(np.sum(self.mass))

    def kinetic_energy(self) -> float:
        """Total kinetic energy ``sum(m v^2 / 2)``."""
        return float(0.5 * np.sum(self.mass * np.sum(self.vel**2, axis=1)))

    def internal_energy(self) -> float:
        """Total internal energy ``sum(m u)``."""
        return float(np.sum(self.mass * self.u))

    def momentum(self) -> np.ndarray:
        """Total linear momentum vector."""
        return np.sum(self.mass[:, None] * self.vel, axis=0)

    def angular_momentum(self) -> np.ndarray:
        """Total angular momentum vector about the origin."""
        return np.sum(self.mass[:, None] * np.cross(self.pos, self.vel), axis=0)

    def validate(self) -> None:
        """Raise if any physical field is in an invalid state."""
        if not np.all(np.isfinite(self.pos)):
            raise SimulationError("non-finite particle positions")
        if not np.all(np.isfinite(self.vel)):
            raise SimulationError("non-finite particle velocities")
        if np.any(self.mass <= 0):
            raise SimulationError("non-positive particle masses")
        if np.any(self.h <= 0):
            raise SimulationError("non-positive smoothing lengths")
        if np.any(self.u < 0):
            raise SimulationError("negative internal energy")

    def reorder(self, order: np.ndarray) -> None:
        """Permute every field by ``order`` (SFC sort during domain sync)."""
        if len(order) != self.n:
            raise SimulationError(
                f"reorder permutation has length {len(order)}, expected {self.n}"
            )
        for name in self._VEC_FIELDS + self._SCALAR_FIELDS + ("c_iad", "nc"):
            setattr(self, name, getattr(self, name)[order])
