"""NVIDIA NVML power telemetry.

NVML reports instantaneous *board* power in milliwatts
(``nvmlDeviceGetPowerUsage``) and, on Volta and newer, a monotonically
increasing total-energy counter in millijoules
(``nvmlDeviceGetTotalEnergyConsumption``).  The power reading is an
estimate produced by the card's power-management controller: it refreshes
at tens of hertz and carries a few watts of estimation noise (NVIDIA
documents +-5 W / +-5 %), which we model as deterministic Gaussian noise on
each controller tick.

One NVML handle maps to one physical card — on A100 systems that is also
one MPI rank's device, which is why per-rank attribution is exact on
CSCS-A100 and miniHPC (in contrast to the MI250X half-card situation).
"""

from __future__ import annotations

import math

from repro.hardware.gpu import GpuCard
from repro.sensors.base import SampledEnergyCounter, SensorReading

#: NVML power-management controller refresh period (~20 Hz on A100).
NVML_PERIOD_S = 0.05

#: Documented board-power estimation error (standard deviation we use).
NVML_NOISE_SIGMA_W = 3.0


class NvmlGpu:
    """The NVML view of one GPU card."""

    def __init__(self, card: GpuCard, index: int, seed: int = 0) -> None:
        self.card = card
        self.index = index
        self.counter = SampledEnergyCounter(
            card.trace,
            refresh_period_s=NVML_PERIOD_S,
            watts_quantum=1e-3,
            energy_quantum=1e-3,
            noise_sigma_watts=NVML_NOISE_SIGMA_W,
            seed=seed + index,
            # nvmlDeviceGetTotalEnergyConsumption counts since driver
            # load, not since the job started.
            initial_joules=float((seed * 97 + index * 40_009) % 90_000_000),
        )

    def power_usage_mw(self, t: float) -> int:
        """``nvmlDeviceGetPowerUsage``: board power in integer milliwatts."""
        return int(round(self.counter.read(t).watts * 1e3))

    def total_energy_consumption_mj(self, t: float) -> int:
        """``nvmlDeviceGetTotalEnergyConsumption``: energy in millijoules.

        Quantized *once*, by flooring the exact accumulator: the
        sub-millijoule residual is carried in the accumulator rather than
        being discarded per read, so successive reads telescope — summed
        per-interval deltas equal the full-window delta exactly and stay
        within one millijoule of the integrated power curve no matter how
        many reads a run takes.  (The previous floor-to-quantum-then-round
        double quantization re-rounded float representation error on each
        independent read.)
        """
        exact = self.counter.read_exact(t).joules
        # The epsilon guards reads landing a float ulp below an exact
        # integer-millijoule accumulator value.
        return int(math.floor(exact * 1e3 + 1e-9))

    def read(self, t: float) -> SensorReading:
        """Raw counter state (SI units) at time ``t``."""
        return self.counter.read(t)
