"""Extension benchmark: dynamic per-function DVFS (the paper's future work).

The paper's conclusion proposes using the gathered per-function data with
"dynamic approaches ... that trade-off high performance and energy
consumption" and mentions identifying Pareto-optimal operating points.
This benchmark runs the implemented tuning loop on miniHPC (450^3
Subsonic Turbulence) in both modes:

* **min-EDP** — the policy should at least match the best static
  frequency (it may simply collapse onto it) while beating the nominal
  clock clearly;
* **energy under a 3 % slowdown budget** — the Pareto case: keep the
  compute-bound kernels at the nominal clock (performance), down-clock
  the memory-/latency-bound phases (energy), achieving savings no static
  frequency can reach inside the same budget.
"""

from conftest import write_result

from repro.config import MINIHPC, SUBSONIC_TURBULENCE
from repro.tuning import tune_per_function

FREQS = (1410.0, 1320.0, 1230.0, 1140.0, 1050.0, 1005.0)
NUM_STEPS = 100
PARTICLES = 450.0**3


def _campaigns():
    unconstrained = tune_per_function(
        MINIHPC,
        SUBSONIC_TURBULENCE,
        num_cards=2,
        freqs_mhz=FREQS,
        num_steps=NUM_STEPS,
        particles_per_rank=PARTICLES,
    )
    constrained = tune_per_function(
        MINIHPC,
        SUBSONIC_TURBULENCE,
        num_cards=2,
        freqs_mhz=FREQS,
        num_steps=NUM_STEPS,
        particles_per_rank=PARTICLES,
        objective="energy",
        max_slowdown=1.03,
    )
    return unconstrained, constrained


def bench_dynamic_dvfs(benchmark, results_dir):
    unconstrained, constrained = benchmark.pedantic(
        _campaigns, rounds=1, iterations=1
    )

    lines = ["Dynamic per-function DVFS on miniHPC (450^3, 100 steps)", ""]

    lines.append("min-EDP objective:")
    table = {k: int(v) for k, v in sorted(unconstrained.policy.table.items())}
    lines.append(f"  policy: {table}")
    lines.append(
        f"  EDP vs 1410 MHz: {unconstrained.edp_vs_baseline:.3f}   "
        f"EDP vs best static ({unconstrained.best_static_mhz:.0f} MHz): "
        f"{unconstrained.edp_vs_best_static:.3f}   "
        f"switches: {unconstrained.switch_count}"
    )
    assert unconstrained.edp_vs_baseline < 0.92
    assert unconstrained.edp_vs_best_static < 1.03

    dilation = constrained.dynamic_seconds / constrained.baseline_seconds
    lines.append("")
    lines.append("min-energy, <=3% slowdown budget (Pareto case):")
    table = {k: int(v) for k, v in sorted(constrained.policy.table.items())}
    lines.append(f"  policy: {table}")
    lines.append(
        f"  time dilation: {dilation:.3f}   EDP vs 1410 MHz: "
        f"{constrained.edp_vs_baseline:.3f}   switches: "
        f"{constrained.switch_count}"
    )
    assert dilation < 1.05
    assert constrained.edp_vs_baseline < 0.95
    # Compute-bound kernels keep the nominal clock; memory-bound drop.
    assert constrained.policy.table["MomentumEnergy"] == 1410.0
    assert constrained.policy.table["Density"] == 1005.0

    write_result(results_dir, "ext_dynamic_dvfs", "\n".join(lines))


def bench_smoke_dynamic_dvfs(results_dir):
    campaign = tune_per_function(
        MINIHPC,
        SUBSONIC_TURBULENCE,
        num_cards=2,
        freqs_mhz=(1410.0, 1230.0, 1005.0),
        num_steps=20,
        particles_per_rank=300.0**3,
        objective="energy",
        max_slowdown=1.03,
    )

    dilation = campaign.dynamic_seconds / campaign.baseline_seconds
    assert dilation < 1.05
    assert campaign.edp_vs_baseline < 1.0
    # Compute-bound kernels keep the nominal clock.
    assert campaign.policy.table["MomentumEnergy"] == 1410.0

    lines = [
        "Dynamic per-function DVFS smoke (miniHPC, 300^3, 20 steps)",
        f"policy: { {k: int(v) for k, v in sorted(campaign.policy.table.items())} }",
        f"time dilation: {dilation:.3f}   EDP vs 1410 MHz: "
        f"{campaign.edp_vs_baseline:.3f}   switches: {campaign.switch_count}",
    ]
    write_result(results_dir, "ext_dynamic_dvfs_smoke", "\n".join(lines))
