"""Low-overhead profiling hooks (Section 2, "Measurement of application
energy consumption").

SPH-EXA provides hooks around every loop function, normally used for
timings; the paper attaches PMT reads to the same hooks.  The registry here
is exactly that extension point: any subscriber with ``on_enter(name)`` /
``on_exit(name)`` callbacks observes every instrumented region, so the
energy profiler (:mod:`repro.instrumentation`) plugs in without the solver
knowing about power measurement at all.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Protocol

from repro.errors import SimulationError


class HookSubscriber(Protocol):
    """What a hook subscriber must provide."""

    def on_enter(self, name: str) -> None: ...

    def on_exit(self, name: str) -> None: ...


class ProfilingHooks:
    """Region registry with host-time accounting and subscriber fan-out."""

    def __init__(self) -> None:
        self._subscribers: list[HookSubscriber] = []
        self._stack: list[str] = []
        #: Accumulated host seconds per region name.
        self.timings: dict[str, float] = {}
        #: Number of times each region ran.
        self.counts: dict[str, int] = {}

    def subscribe(self, subscriber: HookSubscriber) -> None:
        """Attach a subscriber to all future regions."""
        self._subscribers.append(subscriber)

    @contextmanager
    def region(self, name: str) -> Iterator[None]:
        """Instrument one function-call region."""
        if name in self._stack:
            raise SimulationError(f"hook region {name!r} is already active")
        self._stack.append(name)
        for sub in self._subscribers:
            sub.on_enter(name)
        # Host-side profiling overhead, not simulated time.
        t0 = time.perf_counter()  # audit-lint: allow[wallclock]
        try:
            yield
        finally:
            # Host-side profiling overhead, not simulated time.
            elapsed = time.perf_counter() - t0  # audit-lint: allow[wallclock]
            self.timings[name] = self.timings.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1
            for sub in reversed(self._subscribers):
                sub.on_exit(name)
            self._stack.pop()

    @property
    def active_region(self) -> str | None:
        """The innermost active region, if any."""
        return self._stack[-1] if self._stack else None

    def region_names(self) -> list[str]:
        """All regions seen so far, in first-seen order."""
        return list(self.timings)
