"""The PMT energy profiler attached to the SPH-EXA hooks.

Per rank, the profiler snapshots the relevant PMT counters when a
function-call region begins and when *that rank's* call completes, and
accumulates the deltas into per-(rank, function) records.  Counter
sources per platform:

* **Cray (LUMI-G)** — one ``cray`` PMT meter per node delivers node, CPU,
  memory and per-card accelerator counters in a single read; a rank's
  ``gpu`` counter is its card's ``accelN`` (shared with its card-mate GCD).
* **NVML systems (CSCS-A100, miniHPC)** — a per-rank ``nvml`` meter for
  the GPU, a shared per-node ``rapl`` meter for the CPU, and the IPMI node
  sensor for the node counter.  No memory counter exists (Figure 2's
  "Other" therefore absorbs memory on these systems).

Reads at identical simulated timestamps are cached per node, matching the
fact that co-located ranks reading the same counter at the same instant
see the same value.

By default every meter is wrapped in the resilient layer
(:class:`~repro.pmt.backends.resilient.ResilientPMT` for PMT backends,
:class:`~repro.sensors.resilient.ResilientSensor` for raw sensor reads),
so a failing or lying sensor degrades — retried, interpolated, flagged —
instead of aborting the run.  Glitch plausibility bounds come from the
hardware specs' nominal peak powers.  Every mitigation is accounted: each
:class:`FunctionEnergyRecord` carries the health-counter deltas that fired
while the region was open, and :meth:`gather` emits one
:class:`TelemetryHealthRecord` per node.  On a healthy run the resilient
layer is value-transparent: all measured energies are bit-identical to an
unwrapped run.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.errors import MeasurementError
from repro.instrumentation.records import (
    FunctionEnergyRecord,
    NodeWindowRecord,
    RunMeasurements,
    TelemetryHealthRecord,
)
from repro.mpi.mapping import RankPlacement
from repro.pmt.backends.cray import CrayPMT
from repro.pmt.backends.nvml import NvmlPMT
from repro.pmt.backends.rapl import RaplPMT
from repro.pmt.backends.resilient import ResilientPMT
from repro.pmt.base import PMT
from repro.sensors.base import SensorReading
from repro.sensors.nvml import NvmlGpu
from repro.sensors.resilient import (
    GLITCH_MARGIN,
    ResilientSensor,
    SensorHealth,
    diff_counters,
)
from repro.sensors.telemetry import NodeTelemetry


class _SlurmNodeSource:
    """The Slurm node-level energy source as a plain ``read(t)`` sensor."""

    def __init__(self, telemetry: NodeTelemetry) -> None:
        self._telemetry = telemetry

    def read(self, t: float) -> SensorReading:
        return self._telemetry.slurm_energy_reading(t)


class _NvmlEnergySource:
    """NVML's total-energy counter as a ``read(t)`` sensor.

    Reproduces the integer-millijoule rounding of
    ``nvmlDeviceGetTotalEnergyConsumption`` exactly, so wrapping it in the
    resilient layer leaves healthy application-window reads unchanged.
    """

    def __init__(self, gpu: NvmlGpu) -> None:
        self._gpu = gpu

    def read(self, t: float) -> SensorReading:
        return SensorReading(
            timestamp=t,
            watts=self._gpu.power_usage_mw(t) / 1e3,
            joules=self._gpu.total_energy_consumption_mj(t) / 1e3,
        )


class EnergyProfiler:
    """Per-rank, per-function PMT measurement collection."""

    def __init__(
        self,
        placement: RankPlacement,
        telemetries: list[NodeTelemetry],
        system: SystemConfig,
        resilient: bool = True,
    ) -> None:
        if len(telemetries) != placement.cluster.num_nodes:
            raise MeasurementError("one telemetry per node required")
        self.placement = placement
        self.telemetries = telemetries
        self.system = system
        self.resilient = resilient
        self.clock = placement.cluster.clock

        spec = placement.cluster.node_spec
        node_bound = GLITCH_MARGIN * spec.peak_watts
        card_bound = GLITCH_MARGIN * spec.card_peak_watts

        num_nodes = len(telemetries)
        self._cray: list[PMT | None] = [None] * num_nodes
        self._rapl: list[PMT | None] = [None] * num_nodes
        #: Unwrapped RAPL backends (for ``suspect_intervals`` accounting).
        self._rapl_raw: list[RaplPMT | None] = [None] * num_nodes
        self._nvml: dict[int, PMT] = {}
        self._node_source: list[object | None] = [None] * num_nodes
        self._window_sources: list[list] = [[] for _ in range(num_nodes)]
        #: Per node: ``(child_name, source-with-.health)`` in wiring order.
        self._health_sources: list[list[tuple[str, object]]] = [
            [] for _ in range(num_nodes)
        ]

        if system.pmt_backend == "cray":
            for node_index, tel in enumerate(telemetries):
                meter: PMT = CrayPMT(telemetry=tel)
                if resilient:
                    meter = ResilientPMT(
                        meter, label="cray", plausible_max_watts=node_bound
                    )
                    self._health_sources[node_index].append(("cray", meter))
                self._cray[node_index] = meter
        else:
            for node_index, tel in enumerate(telemetries):
                raw = RaplPMT(telemetry=tel)
                self._rapl_raw[node_index] = raw
                cpu_meter: PMT = raw
                if resilient:
                    # No glitch bound: RAPL has no power register — its
                    # watts are *derived* by differencing energy reads, and
                    # two reads closer together than the register refresh
                    # alias into arbitrarily large (legitimate) spikes.
                    cpu_meter = ResilientPMT(raw, label="cpu")
                    self._health_sources[node_index].append(("cpu", cpu_meter))
                self._rapl[node_index] = cpu_meter

                node_src: object = _SlurmNodeSource(tel)
                if resilient:
                    node_src = ResilientSensor(
                        node_src, label="node", plausible_max_watts=node_bound
                    )
                    self._health_sources[node_index].append(("node", node_src))
                self._node_source[node_index] = node_src

                for i, gpu in enumerate(tel.nvml):
                    win_src: object = _NvmlEnergySource(gpu)
                    if resilient:
                        win_src = ResilientSensor(
                            win_src,
                            label=f"gpu{i}",
                            plausible_max_watts=card_bound,
                        )
                        self._health_sources[node_index].append(
                            (f"gpu{i}", win_src)
                        )
                    self._window_sources[node_index].append(win_src)

            for rank in range(placement.size):
                loc = placement.location(rank)
                gpu_meter: PMT = NvmlPMT(
                    telemetry=telemetries[loc.node_index],
                    device_index=loc.card_index,
                )
                if resilient:
                    gpu_meter = ResilientPMT(
                        gpu_meter,
                        label=f"gpu{loc.card_index}",
                        plausible_max_watts=card_bound,
                    )
                    self._health_sources[loc.node_index].append(
                        (f"gpu{loc.card_index}", gpu_meter)
                    )
                self._nvml[rank] = gpu_meter

        #: Optional :class:`~repro.timeseries.spans.SpanRecorder`: when
        #: set, every begin/end mark also records a region span (pure
        #: observation — no PMT read happens on its behalf, so measured
        #: energies are unchanged).
        self.span_recorder = None
        #: Optional :class:`~repro.audit.hooks.EnergyAuditor`: when set,
        #: every node-counter snapshot and closed region is checked
        #: against the accounting invariants.  Like the span recorder it
        #: only observes values already read — audited energies are
        #: bit-identical to unaudited ones.
        self.auditor = None
        #: Optional callable ``(rank, function, t0, t1, deltas)`` fired
        #: after every closed region — the DVFS governor's model-update
        #: tap.  Same contract as the other hooks: it receives values the
        #: profiler already read and must not advance the clock, so
        #: attaching it never perturbs a measurement.
        self.region_listener = None

        self._node_cache: dict[tuple[int, float], dict[str, float]] = {}
        self._open: dict[
            int, tuple[float, dict[str, float], dict[str, float] | None]
        ] = {}
        self._records: dict[tuple[int, str], FunctionEnergyRecord] = {}
        self._app_window: tuple[float, list[dict[str, float]]] | None = None
        self._app_end: tuple[float, list[dict[str, float]]] | None = None

    # -- snapshots --------------------------------------------------------------

    def _node_counters(self, node_index: int) -> dict[str, float]:
        """Node-shared counters (cached by simulated timestamp)."""
        key = (node_index, self.clock.now)
        cached = self._node_cache.get(key)
        if cached is not None:
            return cached
        tel = self.telemetries[node_index]
        out: dict[str, float] = {}
        cray = self._cray[node_index]
        if cray is not None:
            state = cray.read()
            out["node"] = state.joules_of("node")
            out["cpu"] = state.joules_of("cpu")
            if "memory" in state.names():
                out["memory"] = state.joules_of("memory")
            for i in range(len(tel.node.cards)):
                out[f"accel{i}"] = state.joules_of(f"accel{i}")
        else:
            rapl = self._rapl[node_index]
            node_src = self._node_source[node_index]
            assert rapl is not None and node_src is not None
            out["cpu"] = rapl.read().joules
            out["node"] = node_src.read(self.clock.now).joules
            # Per-card window counters are read at every boundary too: the
            # stuck detector needs a read cadence much finer than the app
            # window to catch a mid-run freeze before end_app().
            for i, src in enumerate(self._window_sources[node_index]):
                out[f"accel{i}"] = src.read(self.clock.now).joules
        # Only keep the freshest timestamp per node to bound memory.
        self._node_cache = {
            k: v for k, v in self._node_cache.items() if k[0] != node_index
        }
        self._node_cache[key] = out
        if self.auditor is not None:
            self.auditor.on_counters(node_index, self.clock.now, out)
        return out

    def snapshot(self, rank: int) -> dict[str, float]:
        """This rank's canonical counters (joules) right now."""
        loc = self.placement.location(rank)
        shared = self._node_counters(loc.node_index)
        out = {"node": shared["node"], "cpu": shared["cpu"]}
        if "memory" in shared:
            out["memory"] = shared["memory"]
        if self.system.pmt_backend == "cray":
            out["gpu"] = shared[f"accel{loc.card_index}"]
        else:
            out["gpu"] = self._nvml[rank].read().joules
        return out

    # -- telemetry health -----------------------------------------------------------

    def _node_health_counters(self, node_index: int) -> dict[str, float]:
        """Aggregate mitigation counters of every meter of one node."""
        total = SensorHealth()
        for _, source in self._health_sources[node_index]:
            total.add(source.health)
        counters = total.counters()
        raw = self._rapl_raw[node_index]
        if raw is not None:
            counters["suspect_intervals"] = float(raw.suspect_intervals)
        return counters

    # -- region instrumentation ----------------------------------------------------

    def begin(self, rank: int) -> None:
        """Called when a rank enters an instrumented function region."""
        if rank in self._open:
            raise MeasurementError(f"rank {rank} already has an open region")
        health = None
        if self.resilient:
            loc = self.placement.location(rank)
            health = self._node_health_counters(loc.node_index)
        self._open[rank] = (self.clock.now, self.snapshot(rank), health)
        if self.span_recorder is not None:
            self.span_recorder.begin(
                rank,
                self.clock.now,
                node_index=self.placement.location(rank).node_index,
            )

    def end(self, rank: int, function: str) -> None:
        """Called when a rank's function call completes (its own end time)."""
        try:
            t0, start, health0 = self._open.pop(rank)
        except KeyError:
            raise MeasurementError(
                f"rank {rank} has no open region to end"
            ) from None
        end = self.snapshot(rank)
        deltas = {name: end[name] - start[name] for name in start}
        health = None
        if health0 is not None:
            loc = self.placement.location(rank)
            health = diff_counters(
                self._node_health_counters(loc.node_index), health0
            )
        key = (rank, function)
        record = self._records.get(key)
        if record is None:
            record = FunctionEnergyRecord(rank=rank, function=function)
            self._records[key] = record
        record.accumulate(self.clock.now - t0, deltas, health)
        if self.region_listener is not None:
            self.region_listener(rank, function, t0, self.clock.now, deltas)
        if self.auditor is not None:
            self.auditor.on_region(rank, function, t0, self.clock.now, deltas)
        if self.span_recorder is not None:
            self.span_recorder.end(rank, function, self.clock.now)

    # -- run window -----------------------------------------------------------------

    def _window_snapshots(self) -> list[dict[str, float]]:
        # The node-shared snapshot already carries every counter the window
        # needs (accel counters included, on both platform families).
        return [
            dict(self._node_counters(node_index))
            for node_index in range(len(self.telemetries))
        ]

    def start_app(self) -> None:
        """Mark the start of the instrumented window (first time-step)."""
        self._app_window = (self.clock.now, self._window_snapshots())
        if self.span_recorder is not None:
            self.span_recorder.instant("app_start", self.clock.now)

    def end_app(self) -> None:
        """Mark the end of the instrumented window (last time-step)."""
        if self._app_window is None:
            raise MeasurementError("end_app() without start_app()")
        self._app_end = (self.clock.now, self._window_snapshots())
        if self.span_recorder is not None:
            self.span_recorder.instant("app_end", self.clock.now)

    # -- gather -----------------------------------------------------------------------

    def _health_records(self) -> list[TelemetryHealthRecord]:
        """One telemetry-health summary per node (resilient runs only)."""
        records = []
        for node_index in range(len(self.telemetries)):
            total = SensorHealth()
            degraded: dict[str, None] = {}
            for child, source in self._health_sources[node_index]:
                total.add(source.health)
                if source.health.degraded:
                    degraded.setdefault(child)
            raw = self._rapl_raw[node_index]
            suspect = raw.suspect_intervals if raw is not None else 0
            if suspect:
                # The CPU meter served at least one possibly-undercounting
                # (multi-wrap) RAPL interval.
                degraded.setdefault("cpu")
            records.append(
                TelemetryHealthRecord(
                    node_index=node_index,
                    suspect_intervals=suspect,
                    degraded_children=list(degraded),
                    status="degraded" if degraded else "ok",
                    **total.counters(),
                )
            )
        return records

    def gather(
        self,
        test_case: str,
        num_steps: int,
        particles_per_rank: float,
    ) -> RunMeasurements:
        """Collect all per-rank records (the end-of-run MPI gather)."""
        if self._app_window is None or self._app_end is None:
            raise MeasurementError("gather() requires a completed app window")
        t_start, snaps_start = self._app_window
        t_end, snaps_end = self._app_end

        windows: list[NodeWindowRecord] = []
        for node_index, tel in enumerate(self.telemetries):
            s0, s1 = snaps_start[node_index], snaps_end[node_index]
            cards = [
                s1[f"accel{i}"] - s0[f"accel{i}"]
                for i in range(len(tel.node.cards))
            ]
            windows.append(
                NodeWindowRecord(
                    node_index=node_index,
                    node_joules=s1["node"] - s0["node"],
                    cpu_joules=s1["cpu"] - s0["cpu"],
                    memory_joules=(
                        s1["memory"] - s0["memory"] if "memory" in s0 else None
                    ),
                    card_joules=cards,
                )
            )

        gpu_freq = self.placement.gpu_of(0).frequency.current_hz / 1e6
        return RunMeasurements(
            system_name=self.system.name,
            test_case=test_case,
            num_ranks=self.placement.size,
            num_nodes=self.placement.cluster.num_nodes,
            gcds_per_card=self.placement.cluster.node_spec.gpu.gcds_per_card,
            gpu_freq_mhz=gpu_freq,
            num_steps=num_steps,
            particles_per_rank=particles_per_rank,
            app_start=t_start,
            app_end=t_end,
            records=sorted(
                self._records.values(), key=lambda r: (r.rank, r.function)
            ),
            node_windows=windows,
            telemetry_health=self._health_records() if self.resilient else [],
        )
