"""Federated campaign queue: leases, failures, recovery, equivalence.

The load-bearing properties:

* exactly one worker can hold a key's lease, no matter how many race;
* a SIGKILLed worker's lease goes stale and is stolen — its key is
  recovered with zero lost and zero duplicated executions;
* worker failures never abort a drain: they are archived as typed
  records, retried with deterministic backoff, and poisoned keys are
  quarantined rather than re-leased forever;
* a federated drain is byte-identical to the serial reference, asserted
  down to the cache file bytes (hypothesis-driven over specs).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    RunKey,
    campaign_summary,
    execute,
    execute_key,
    expand,
    run_key_hash,
)
from repro.campaign.queue import (
    BACKOFF,
    POISONED,
    FailureLog,
    FederationConfig,
    Journal,
    LeaseQueue,
    WorkerProfile,
    drain,
    failure_backoff_s,
    gc_sweep,
    placement_order,
)
from repro.cli import main
from repro.config import CampaignSettings
from repro.errors import CampaignExecutionError, ConfigurationError

STEPS = 2


def a_key(**overrides) -> RunKey:
    kwargs = dict(
        system="miniHPC",
        test_case="Subsonic Turbulence",
        num_cards=2,
        gpu_freq_mhz=1410.0,
        num_steps=STEPS,
        particles_per_rank=27_000,  # 30^3: a few ms per run
        seed=0,
    )
    kwargs.update(overrides)
    return RunKey(**kwargs)


def small_spec(seeds=(0, 1, 2, 3)) -> CampaignSpec:
    return CampaignSpec(
        name="fed-test",
        systems=("miniHPC",),
        test_cases=("Subsonic Turbulence",),
        card_counts=(2,),
        freqs_mhz=(1410.0,),
        num_steps=STEPS,
        particles_per_rank=(27_000,),
        seeds=tuple(seeds),
    )


def fast_config(**overrides) -> FederationConfig:
    kwargs = dict(
        lease_ttl_s=30.0,
        heartbeat_s=0.05,
        max_attempts=3,
        retry_backoff_s=0.0,
        poll_s=0.01,
    )
    kwargs.update(overrides)
    return FederationConfig(**kwargs)


def store_bytes(store: ResultStore) -> dict[str, bytes]:
    """Every cache entry's raw bytes, keyed by file name."""
    return {path.name: path.read_bytes() for path in store.entries()}


class TestLeaseQueue:
    def test_acquire_is_exclusive(self, tmp_path):
        q1 = LeaseQueue(tmp_path, profile=WorkerProfile.local(token="a"))
        q2 = LeaseQueue(tmp_path, profile=WorkerProfile.local(token="b"))
        lease = q1.try_acquire("d" * 64)
        assert lease is not None
        assert q2.try_acquire("d" * 64) is None
        lease.release()
        assert q2.try_acquire("d" * 64) is not None

    def test_lease_file_names_the_holder(self, tmp_path):
        profile = WorkerProfile.local(token="tok")
        queue = LeaseQueue(tmp_path, profile=profile)
        lease = queue.try_acquire("e" * 64)
        payload = json.loads(lease.path.read_text())
        assert payload["holder"] == profile.worker_id
        assert payload["token"] == "tok"
        lease.release()
        assert not lease.path.exists()

    def test_heartbeat_refreshes_mtime(self, tmp_path):
        queue = LeaseQueue(tmp_path, config=fast_config())
        lease = queue.try_acquire("f" * 64)
        old = time.time() - 100.0
        os.utime(lease.path, (old, old))
        lease.start_heartbeat(0.02)
        deadline = time.time() + 5.0
        while lease.path.stat().st_mtime < old + 50 and time.time() < deadline:
            time.sleep(0.01)
        assert lease.path.stat().st_mtime > old + 50
        lease.release()

    def test_stale_lease_is_stolen_exactly_once(self, tmp_path):
        config = fast_config(lease_ttl_s=0.2, heartbeat_s=0.05)
        holder = LeaseQueue(
            tmp_path, profile=WorkerProfile.local(token="dead"), config=config
        )
        lease = holder.try_acquire("a" * 64)
        old = time.time() - 10.0
        os.utime(lease.path, (old, old))  # simulate a dead heartbeat
        thief = LeaseQueue(
            tmp_path, profile=WorkerProfile.local(token="thief"), config=config
        )
        stolen = thief.try_acquire("a" * 64)
        assert stolen is not None
        assert thief.stolen == 1
        # The original holder cannot release what was stolen from it.
        lease.release()
        assert stolen.path.is_file()
        stolen.release()

    def test_fresh_lease_is_not_stolen(self, tmp_path):
        config = fast_config(lease_ttl_s=60.0)
        holder = LeaseQueue(tmp_path, config=config)
        lease = holder.try_acquire("b" * 64)
        thief = LeaseQueue(
            tmp_path, profile=WorkerProfile.local(token="t2"), config=config
        )
        assert thief.try_acquire("b" * 64) is None
        assert thief.stolen == 0
        lease.release()

    def test_sweep_reaps_only_stale(self, tmp_path):
        config = fast_config(lease_ttl_s=0.2)
        queue = LeaseQueue(tmp_path, config=config)
        stale = queue.try_acquire("c" * 64)
        fresh = queue.try_acquire("d" * 64)
        old = time.time() - 10.0
        os.utime(stale.path, (old, old))
        assert queue.sweep() == 1
        live, stale_count = queue.active()
        assert (live, stale_count) == (1, 0)
        fresh.release()

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            FederationConfig(lease_ttl_s=1.0, heartbeat_s=2.0)
        with pytest.raises(ConfigurationError):
            FederationConfig(max_attempts=0)


class TestPlacement:
    def test_preferred_systems_first_stable(self):
        keys = tuple(
            a_key(system=s, seed=i)
            for i, s in enumerate(
                ["CSCS-A100", "miniHPC", "CSCS-A100", "miniHPC"]
            )
        )
        profile = WorkerProfile.local(systems=("miniHPC",))
        ordered = placement_order(keys, profile)
        assert [k.system for k in ordered] == [
            "miniHPC", "miniHPC", "CSCS-A100", "CSCS-A100",
        ]
        assert [k.seed for k in ordered] == [1, 3, 0, 2]

    def test_no_profile_preserves_spec_order(self):
        keys = tuple(a_key(seed=i) for i in range(3))
        assert placement_order(keys, None) == keys


class TestStoreFederation:
    """Satellite: collision-proof temp names, orphan reaping."""

    def test_tmp_name_embeds_host_pid_token(self, tmp_path):
        store = ResultStore(tmp_path)
        tmp = store._tmp_path(tmp_path / "ab" / "deadbeef.json")
        import socket

        assert socket.gethostname() in tmp.name
        assert str(os.getpid()) in tmp.name
        # Distinct calls never collide (random token).
        assert tmp.name != store._tmp_path(tmp_path / "ab" / "deadbeef.json").name

    def test_orphans_counted_and_reaped(self, tmp_path):
        store = ResultStore(tmp_path)
        key = a_key()
        store.put(key, execute_key(key))
        shard = store.path_for(key).parent
        orphan = shard / ".dead.json.tmp-otherhost-123-abcd"
        orphan.write_text("partial write of a killed worker")
        assert store.stats()["tmp_orphans"] == 1
        assert store.reap_tmp() == 1
        assert store.stats()["tmp_orphans"] == 0
        assert store.get(key) is not None  # real entries untouched

    def test_clean_reaps_orphans_too(self, tmp_path):
        store = ResultStore(tmp_path)
        key = a_key()
        store.put(key, execute_key(key))
        shard = store.path_for(key).parent
        (shard / ".dead.json.tmp-x-1-ff").write_text("junk")
        store.clean()
        assert store.tmp_orphans() == []

    def test_put_succeeds_while_orphan_present(self, tmp_path):
        store = ResultStore(tmp_path)
        key = a_key()
        path = store.path_for(key)
        path.parent.mkdir(parents=True)
        (path.parent / f".{path.name}.tmp-ghost-1-00").write_text("junk")
        store.put(key, execute_key(key))
        assert store.get(key) is not None


class TestCorruptEntries:
    """Satellite: corrupt cache entries are counted, not silent misses."""

    def corrupt_one(self, store, key):
        path = store.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json")

    def test_lookup_distinguishes_corrupt_from_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = a_key()
        assert store.lookup(key) == (None, "miss")
        self.corrupt_one(store, key)
        result, status = store.lookup(key)
        assert (result, status) == (None, "corrupt")
        assert store.corrupt_seen == 1
        assert store.stats()["corrupt"] == 1

    def test_execute_counts_quarantines_and_reexecutes(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = expand(small_spec(seeds=(0, 1)))
        execute(keys, store=store)
        self.corrupt_one(store, keys[0])
        results, stats = execute(keys, store=store)
        assert stats.corrupt == 1
        assert stats.hits == 1
        assert stats.misses == 1  # re-executed over the rot
        assert len(results) == 2
        quarantined = list((store.root / store.QUARANTINE_DIR).iterdir())
        assert len(quarantined) == 1
        assert store.get(keys[0]) is not None  # clean entry re-archived

    def test_summary_surfaces_cache_rot(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = expand(small_spec(seeds=(0,)))
        execute(keys, store=store)
        self.corrupt_one(store, keys[0])
        results, stats = execute(keys, store=store)
        text = campaign_summary("t", stats, results)
        assert "Cache health: 1 corrupt entry" in text
        clean_results, clean_stats = execute(keys, store=store)
        assert "Cache health" not in campaign_summary(
            "t", clean_stats, clean_results
        )

    def test_gc_quarantines_corrupt(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = expand(small_spec(seeds=(0, 1)))
        execute(keys, store=store)
        self.corrupt_one(store, keys[1])
        counts = gc_sweep(store)
        assert counts["corrupt_quarantined"] == 1
        assert store.stats()["corrupt"] == 0
        assert store.get(keys[0]) is not None


def _fail_on_odd_seed(key: RunKey):
    if key.seed % 2 == 1:
        raise RuntimeError(f"injected failure for seed {key.seed}")
    return execute_key(key)


class TestFailureHandling:
    """Satellite: one broken point never aborts the sweep."""

    def test_serial_sweep_survives_failures(self, tmp_path, monkeypatch):
        import repro.campaign.executor as executor_mod

        monkeypatch.setattr(executor_mod, "execute_key", _fail_on_odd_seed)
        store = ResultStore(tmp_path)
        keys = expand(small_spec(seeds=(0, 1, 2, 3)))
        with pytest.raises(CampaignExecutionError) as excinfo:
            execute(keys, store=store)
        err = excinfo.value
        assert len(err.failures) == 2
        assert {f.key.seed for f in err.failures} == {1, 3}
        assert err.stats.failed == 2
        # Every healthy key completed and stayed archived.
        assert len(err.results) == 2
        assert store.get(keys[0]) is not None
        assert store.get(keys[2]) is not None
        # Records archived next to the results, typed.
        archived = FailureLog(tmp_path).all_failures()
        assert {f.error_type for f in archived} == {"RuntimeError"}

    def test_pool_sweep_survives_failures(self, tmp_path, monkeypatch):
        import repro.campaign.executor as executor_mod

        monkeypatch.setattr(executor_mod, "execute_key", _fail_on_odd_seed)
        store = ResultStore(tmp_path)
        keys = expand(small_spec(seeds=(0, 1, 2, 3)))
        with pytest.raises(CampaignExecutionError) as excinfo:
            execute(keys, store=store, workers=2)
        err = excinfo.value
        assert {f.key.seed for f in err.failures} == {1, 3}
        assert len(err.results) == 2

    def test_failures_without_store_still_raise(self, monkeypatch):
        import repro.campaign.executor as executor_mod

        monkeypatch.setattr(executor_mod, "execute_key", _fail_on_odd_seed)
        keys = expand(small_spec(seeds=(0, 1)))
        with pytest.raises(CampaignExecutionError) as excinfo:
            execute(keys)
        assert len(excinfo.value.failures) == 1

    def test_attempts_accumulate_and_poison(self, tmp_path):
        store = ResultStore(tmp_path)
        key = a_key(seed=1)
        config = fast_config(max_attempts=3)

        calls = {"n": 0}

        def boom(_key):
            calls["n"] += 1
            raise ValueError("always broken")

        # One drain retries in-place (no backoff) until the key poisons.
        stats = drain(
            (key,), store, config=config, execute_fn=boom, journal=False
        )
        assert calls["n"] == 3
        assert stats.failures == 3
        record = FailureLog(tmp_path, config=config).load(run_key_hash(key))
        assert record.attempts == 3
        assert record.poisoned
        assert stats.poisoned_seen == 1
        # A poisoned key resolves immediately: no further attempts.
        stats = drain(
            (key,), store, config=config, execute_fn=boom, journal=False
        )
        assert stats.failures == 0
        assert stats.poisoned_seen == 1
        log = FailureLog(tmp_path, config=config)
        assert log.blocked(run_key_hash(key)) == POISONED

    def test_retry_success_clears_the_record(self, tmp_path):
        store = ResultStore(tmp_path)
        key = a_key()
        config = fast_config(max_attempts=5)
        calls = {"n": 0}

        def flaky(k):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("transient")
            return execute_key(k)

        drain((key,), store, config=config, execute_fn=flaky, journal=False)
        log = FailureLog(tmp_path, config=config)
        assert log.load(run_key_hash(key)) is None  # cleared on success
        assert store.get(key) is not None

    def test_backoff_is_deterministic_and_blocks(self, tmp_path):
        digest = "ab" * 32
        assert failure_backoff_s(digest, 1, 0.5) == failure_backoff_s(
            digest, 1, 0.5
        )
        assert 0.25 <= failure_backoff_s(digest, 1, 0.5) < 0.75
        assert failure_backoff_s(digest, 1, 0.0) == 0.0
        config = fast_config(retry_backoff_s=60.0)
        log = FailureLog(tmp_path, config=config)
        log.record(a_key(), digest, ValueError("x"), "w")
        assert log.blocked(digest) == BACKOFF


def _stress_child(root: str, seeds, barrier, out):
    """Hammer one shared store from a separate process."""
    store = ResultStore(root)
    barrier.wait()
    written = 0
    for seed in seeds:
        key = a_key(seed=seed)
        store.put(key, execute_key(key))
        written += 1
        for other in seeds:
            store.get(a_key(seed=other))  # interleaved reads
    out.put(written)


class TestMultiProcessStore:
    def test_concurrent_writers_one_root(self, tmp_path):
        """4 processes write overlapping key sets: no torn/corrupt entries."""
        ctx = multiprocessing.get_context()
        barrier = ctx.Barrier(4)
        out = ctx.Queue()
        seeds = list(range(6))
        procs = [
            # Overlapping slices: every key is written by >= 2 processes.
            ctx.Process(
                target=_stress_child,
                args=(str(tmp_path), seeds[i % 2 :], barrier, out),
            )
            for i in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
        assert all(p.exitcode == 0 for p in procs)
        assert sum(out.get() for _ in procs) >= len(seeds)
        store = ResultStore(tmp_path)
        stats = store.stats()
        assert stats["entries"] == len(seeds)
        assert stats["corrupt"] == 0
        assert stats["tmp_orphans"] == 0
        for seed in seeds:
            assert store.get(a_key(seed=seed)) is not None


def _drain_child(root: str, keys, config, token):
    profile = WorkerProfile.local(token=token)
    drain(keys, ResultStore(root), config=config, profile=profile)


def _blocker_child(root: str, digest: str, ready):
    """Acquire one lease, signal readiness, then hang without heartbeats.

    Stands in for a worker that was SIGKILLed mid-run: the lease exists,
    nothing refreshes it, and nothing was archived.
    """
    queue = LeaseQueue(root, profile=WorkerProfile.local(token="blocker"))
    lease = queue.try_acquire(digest)
    assert lease is not None
    ready.set()
    time.sleep(600)


class TestFederatedDrain:
    def test_federated_equals_serial_byte_for_byte(self, tmp_path):
        keys = expand(small_spec(seeds=(0, 1, 2, 3)))
        serial = ResultStore(tmp_path / "serial")
        serial_results, _ = execute(keys, store=serial)

        fed = ResultStore(tmp_path / "fed")
        fed_results, stats = execute(
            keys, store=fed, federate=2, federation=fast_config()
        )
        assert stats.federated
        assert stats.misses == len(keys)
        assert fed_results == serial_results
        assert store_bytes(fed) == store_bytes(serial)
        # Zero duplicated executions, all journalled.
        digests = Journal.executed_digests(fed.root)
        assert len(digests) == len(keys)
        assert len(set(digests)) == len(keys)

    def test_warm_federated_drain_executes_nothing(self, tmp_path):
        keys = expand(small_spec(seeds=(0, 1)))
        store = ResultStore(tmp_path)
        execute(keys, store=store)
        before = store_bytes(store)
        results, stats = execute(
            keys, store=store, federate=3, federation=fast_config()
        )
        assert stats.hits == len(keys)
        assert stats.misses == 0
        assert stats.executed_steps == 0
        assert store_bytes(store) == before
        assert Journal.executed_digests(store.root) == []

    def test_external_workers_join_the_same_drain(self, tmp_path):
        """Plain drain() processes against one root split the work."""
        keys = expand(small_spec(seeds=(0, 1, 2, 3)))
        config = fast_config()
        ctx = multiprocessing.get_context()
        procs = [
            ctx.Process(
                target=_drain_child,
                args=(str(tmp_path), keys, config, f"w{i}"),
            )
            for i in range(3)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
        assert all(p.exitcode == 0 for p in procs)
        store = ResultStore(tmp_path)
        assert all(store.get(k) is not None for k in keys)
        digests = Journal.executed_digests(tmp_path)
        assert sorted(digests) == sorted(run_key_hash(k) for k in keys)

    def test_sigkilled_worker_is_stolen_zero_lost_zero_duplicated(
        self, tmp_path
    ):
        """The acceptance scenario: kill a lease holder mid-run.

        A blocker claims one key's lease and is SIGKILLed without ever
        archiving or heartbeating.  A drain with a short TTL must steal
        that lease, execute the key itself, and finish the campaign with
        every key archived exactly once.
        """
        keys = expand(small_spec(seeds=(0, 1, 2, 3)))
        victim = keys[0]
        digest = run_key_hash(victim)
        ctx = multiprocessing.get_context()
        ready = ctx.Event()
        blocker = ctx.Process(
            target=_blocker_child, args=(str(tmp_path), digest, ready)
        )
        blocker.start()
        assert ready.wait(timeout=30)
        os.kill(blocker.pid, signal.SIGKILL)
        blocker.join()

        config = fast_config(lease_ttl_s=0.5, heartbeat_s=0.1)
        lease_path = LeaseQueue(tmp_path).lease_path(digest)
        assert lease_path.is_file()  # the kill left the lease behind
        # Wait out the TTL so the abandoned lease reads as stale.
        time.sleep(0.6)
        stats = drain(
            keys,
            ResultStore(tmp_path),
            config=config,
            profile=WorkerProfile.local(token="rescuer"),
        )
        assert stats.steals == 1
        assert stats.executed == len(keys)  # zero lost
        store = ResultStore(tmp_path)
        assert all(store.get(k) is not None for k in keys)
        digests = Journal.executed_digests(tmp_path)
        assert len(digests) == len(set(digests)) == len(keys)  # no dupes
        assert not lease_path.exists()

    def test_federate_requires_a_store(self):
        with pytest.raises(ConfigurationError):
            execute(expand(small_spec(seeds=(0,))), federate=2)
        with pytest.raises(ConfigurationError):
            execute(
                expand(small_spec(seeds=(0,))),
                store=ResultStore("/tmp/x"),
                federate=0,
            )

    @settings(max_examples=3, deadline=None)
    @given(
        seeds=st.lists(
            st.integers(min_value=0, max_value=50),
            min_size=2,
            max_size=4,
            unique=True,
        ),
        federate=st.integers(min_value=1, max_value=3),
    )
    def test_property_federated_equivalence(self, tmp_path_factory, seeds,
                                            federate):
        """Any spec, any worker count: federated ≡ serial, byte-for-byte."""
        tmp_path = tmp_path_factory.mktemp("prop")
        keys = expand(small_spec(seeds=tuple(seeds)))
        serial = ResultStore(tmp_path / "serial")
        execute(keys, store=serial)
        fed = ResultStore(tmp_path / "fed")
        execute(keys, store=fed, federate=federate, federation=fast_config())
        assert store_bytes(fed) == store_bytes(serial)


class TestGcSweep:
    def test_reaps_all_three_debris_kinds(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = expand(small_spec(seeds=(0, 1)))
        execute(keys, store=store)
        # Orphan temp file.
        shard = store.path_for(keys[0]).parent
        (shard / ".x.json.tmp-ghost-9-aa").write_text("junk")
        # Stale lease.
        config = fast_config(lease_ttl_s=0.2)
        lease = LeaseQueue(tmp_path, config=config).try_acquire("9" * 64)
        old = time.time() - 10.0
        os.utime(lease.path, (old, old))
        # Corrupt entry.
        store.path_for(keys[1]).write_text("rot")
        counts = gc_sweep(store, config=config)
        assert counts == {
            "tmp_reaped": 1,
            "leases_swept": 1,
            "corrupt_quarantined": 1,
        }
        assert store.get(keys[0]) is not None  # healthy entry survives


class TestCampaignSettings:
    def test_federation_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEASE_TTL_S", "9")
        monkeypatch.setenv("REPRO_MAX_ATTEMPTS", "7")
        monkeypatch.setenv("REPRO_WORKER_SYSTEMS", "miniHPC, LUMI-G")
        settings_ = CampaignSettings.from_env()
        assert settings_.lease_ttl_s == 9.0
        assert settings_.max_attempts == 7
        assert settings_.worker_systems == ("miniHPC", "LUMI-G")
        config = settings_.federation()
        assert config.lease_ttl_s == 9.0
        assert config.max_attempts == 7
        assert config.heartbeat_s < config.lease_ttl_s

    def test_bad_values_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEASE_TTL_S", "soon")
        with pytest.raises(ConfigurationError):
            CampaignSettings.from_env()
        with pytest.raises(ConfigurationError):
            CampaignSettings(lease_ttl_s=0.0)
        with pytest.raises(ConfigurationError):
            CampaignSettings(max_attempts=0)


class TestCli:
    CAMPAIGN = [
        "fig4", "--sides", "30", "--freqs", "1410", "--steps", "2",
    ]

    def test_work_drains_and_reports(self, tmp_path, capsys):
        code = main(
            ["campaign", "work", *self.CAMPAIGN, "--cache-dir", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 executed" in out
        assert "0 failures" in out

    def test_run_federated(self, tmp_path, capsys):
        code = main(
            [
                "campaign", "run", *self.CAMPAIGN, "--federate", "2",
                "--cache-dir", str(tmp_path), "--quiet",
            ]
        )
        # fig4 rendering needs the baseline frequency only; EDP of the
        # 30^3 toy run may degenerate, so accept the summary either way.
        out = capsys.readouterr().out + capsys.readouterr().err
        if code == 0:
            assert "federated worker" in out
        store = ResultStore(tmp_path)
        assert store.stats()["entries"] == 1

    def test_status_reports_federation_state(self, tmp_path, capsys):
        main(["campaign", "work", *self.CAMPAIGN, "--cache-dir", str(tmp_path)])
        capsys.readouterr()
        assert (
            main(
                ["campaign", "status", *self.CAMPAIGN,
                 "--cache-dir", str(tmp_path)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "0 corrupt" in out
        assert "0 live leases" in out
        assert "0 failure records" in out

    def test_gc_command(self, tmp_path, capsys):
        (tmp_path / "ab").mkdir(parents=True)
        (tmp_path / "ab" / ".x.json.tmp-ghost-1-aa").write_text("junk")
        assert main(["campaign", "gc", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 temp files reaped" in out

    def test_cache_dir_env_is_honored(self, tmp_path, capsys, monkeypatch):
        # REPRO_CACHE_DIR is how workers on different shells/hosts agree
        # on the shared root without repeating --cache-dir everywhere.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "shared"))
        assert main(["campaign", "work", *self.CAMPAIGN]) == 0
        capsys.readouterr()
        store = ResultStore(tmp_path / "shared")
        assert store.stats()["entries"] == 1
        assert main(["campaign", "status", *self.CAMPAIGN]) == 0
        assert f"cache: {tmp_path / 'shared'}" in capsys.readouterr().out
        # An explicit flag still beats the environment.
        assert main(
            ["campaign", "status", *self.CAMPAIGN,
             "--cache-dir", str(tmp_path / "other")]
        ) == 0
        assert "0 cached" in capsys.readouterr().out
