"""PMT-vs-Slurm validation (Figure 1).

Slurm's ConsumedEnergy integrates node counters from job submission to
epilog; PMT's instrumented window starts at the first time-step.  The
validation compares the two totals: PMT <= Slurm always, and the gap is
the launch/init/teardown energy — larger on systems with slower setup and
higher idle draw (LUMI-G).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.instrumentation.records import RunMeasurements
from repro.slurm.job import JobAccounting


@dataclass(frozen=True)
class ValidationPoint:
    """One system/scale point of the Figure 1 comparison."""

    system_name: str
    num_cards: int
    pmt_joules: float
    slurm_joules: float
    #: Telemetry data quality behind the PMT number: ``ok`` when every
    #: sensor read was direct, ``degraded`` when the resilient layer had
    #: to substitute values, ``unknown`` for pre-resilient measurement
    #: files that carry no health records.
    quality: str = "unknown"

    @property
    def ratio(self) -> float:
        """PMT / Slurm (< 1: PMT underestimates relative to Slurm)."""
        if self.slurm_joules <= 0:
            raise AnalysisError("non-positive Slurm energy")
        return self.pmt_joules / self.slurm_joules

    @property
    def gap_joules(self) -> float:
        """Energy Slurm accounts that PMT does not see."""
        return self.slurm_joules - self.pmt_joules


def pmt_total_joules(run: RunMeasurements) -> float:
    """PMT's whole-application energy: node counters over the app window."""
    return sum(w.node_joules for w in run.node_windows)


def telemetry_quality(run: RunMeasurements) -> str:
    """The run's overall data quality: ``ok``/``degraded``/``unknown``."""
    if not run.telemetry_health:
        return "unknown"
    return "degraded" if run.telemetry_degraded else "ok"


def validate_pmt_against_slurm(
    run: RunMeasurements, accounting: JobAccounting, num_cards: int
) -> ValidationPoint:
    """Build one validation point from a completed instrumented job."""
    return ValidationPoint(
        system_name=run.system_name,
        num_cards=num_cards,
        pmt_joules=pmt_total_joules(run),
        slurm_joules=accounting.consumed_energy_joules,
        quality=telemetry_quality(run),
    )
