"""Exact Riemann solver tests and Sod shock-tube validation of the SPH
solver against it."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sph import Simulation
from repro.sph.initial_conditions import make_sod
from repro.sph.propagator import Propagator
from repro.sph.riemann import (
    GasState,
    SOD_LEFT,
    SOD_RIGHT,
    sample_solution,
    solve_star_region,
)


class TestRiemannSolver:
    def test_toro_reference_values(self):
        """Toro's Test 1 (Sod, gamma = 1.4): p* = 0.30313, u* = 0.92745."""
        p_star, u_star = solve_star_region(
            GasState(1.0, 0.0, 1.0), GasState(0.125, 0.0, 0.1), gamma=1.4
        )
        assert p_star == pytest.approx(0.30313, abs=2e-5)
        assert u_star == pytest.approx(0.92745, abs=2e-5)

    def test_symmetric_collision(self):
        """Two equal streams colliding: u* = 0 by symmetry, p* > p0."""
        p_star, u_star = solve_star_region(
            GasState(1.0, 1.0, 1.0), GasState(1.0, -1.0, 1.0)
        )
        assert u_star == pytest.approx(0.0, abs=1e-10)
        assert p_star > 1.0

    def test_trivial_problem(self):
        """Identical states: the solution is the state itself."""
        state = GasState(2.0, 0.3, 1.5)
        p_star, u_star = solve_star_region(state, state)
        assert p_star == pytest.approx(1.5, rel=1e-9)
        assert u_star == pytest.approx(0.3, rel=1e-9)
        rho, u, p = sample_solution(state, state, np.linspace(-2, 2, 11))
        assert np.allclose(rho, 2.0)
        assert np.allclose(u, 0.3)
        assert np.allclose(p, 1.5)

    def test_vacuum_rejected(self):
        with pytest.raises(SimulationError):
            solve_star_region(
                GasState(1.0, -10.0, 0.01), GasState(1.0, 10.0, 0.01)
            )

    def test_invalid_state_rejected(self):
        with pytest.raises(SimulationError):
            GasState(rho=-1.0, u=0.0, p=1.0)

    def test_sampled_solution_limits(self):
        """Far left/right of the waves the initial states are recovered."""
        rho, u, p = sample_solution(
            SOD_LEFT, SOD_RIGHT, np.array([-100.0, 100.0])
        )
        assert rho[0] == pytest.approx(SOD_LEFT.rho)
        assert p[0] == pytest.approx(SOD_LEFT.p)
        assert rho[1] == pytest.approx(SOD_RIGHT.rho)
        assert p[1] == pytest.approx(SOD_RIGHT.p)

    def test_density_jumps_ordered(self):
        """rho decreases monotonically from left state to right state
        across the wave pattern (for the Sod configuration)."""
        xi = np.linspace(-1.5, 2.0, 400)
        rho, _, p = sample_solution(SOD_LEFT, SOD_RIGHT, xi)
        assert rho[0] == pytest.approx(1.0)
        assert rho[-1] == pytest.approx(0.125)
        # Pressure is monotone non-increasing left->right for Sod.
        assert np.all(np.diff(p) <= 1e-12)

    def test_contact_preserves_pressure_and_velocity(self):
        p_star, u_star = solve_star_region(SOD_LEFT, SOD_RIGHT)
        xi = np.array([u_star - 1e-6, u_star + 1e-6])
        rho, u, p = sample_solution(SOD_LEFT, SOD_RIGHT, xi)
        assert p[0] == pytest.approx(p[1], rel=1e-6)
        assert u[0] == pytest.approx(u[1], rel=1e-6)
        assert rho[0] != pytest.approx(rho[1], rel=1e-3)  # density jumps


class TestSodIc:
    def test_density_ratio_eight(self):
        ps, box = make_sod(nx_left=16)
        left = ps.pos[:, 0] < -0.05
        right = ps.pos[:, 0] > 0.05
        assert np.median(ps.rho[left]) / np.median(ps.rho[right]) == pytest.approx(
            8.0
        )

    def test_equal_masses(self):
        ps, _ = make_sod(nx_left=16)
        assert np.allclose(ps.mass, ps.mass[0])

    def test_pressure_ratio_ten(self):
        from repro.sph.physics import ideal_gas_eos

        ps, _ = make_sod(nx_left=16)
        ideal_gas_eos(ps)
        left = ps.pos[:, 0] < -0.05
        right = ps.pos[:, 0] > 0.05
        assert np.median(ps.p[left]) / np.median(ps.p[right]) == pytest.approx(
            10.0, rel=0.01
        )

    def test_invalid_resolution(self):
        with pytest.raises(SimulationError):
            make_sod(nx_left=7)
        with pytest.raises(SimulationError):
            make_sod(nx_left=4)


class TestSodEvolution:
    @pytest.fixture(scope="class")
    def tube(self):
        ps, box = make_sod(nx_left=16, seed=5)
        sim = Simulation(ps, Propagator(box, av_alpha=1.5, courant=0.2))
        while sim.time < 0.08:
            sim.step()
        return sim

    def _exact(self, sim, mask):
        xi = sim.ps.pos[mask, 0] / sim.time
        return sample_solution(SOD_LEFT, SOD_RIGHT, xi)

    def test_density_profile_matches_exact(self, tube):
        mask = np.abs(tube.ps.pos[:, 0]) < 0.35
        rho_exact, _, _ = self._exact(tube, mask)
        rel = np.abs(tube.ps.rho[mask] - rho_exact) / rho_exact
        assert np.median(rel) < 0.10

    def test_contact_moves_right(self, tube):
        """The star-region velocity pushes gas to the right."""
        mask = np.abs(tube.ps.pos[:, 0]) < 0.2
        assert np.mean(tube.ps.vel[mask, 0]) > 0.1

    def test_velocity_profile_matches_exact(self, tube):
        mask = np.abs(tube.ps.pos[:, 0]) < 0.35
        _, u_exact, _ = self._exact(tube, mask)
        err = np.median(np.abs(tube.ps.vel[mask, 0] - u_exact))
        p_star, u_star = solve_star_region(SOD_LEFT, SOD_RIGHT)
        assert err < 0.15 * u_star

    def test_transverse_velocities_small(self, tube):
        """A 1D problem: y/z motion is numerical noise only."""
        mask = np.abs(tube.ps.pos[:, 0]) < 0.35
        vx = np.abs(tube.ps.vel[mask, 0]).mean()
        vyz = np.abs(tube.ps.vel[mask, 1:]).mean()
        assert vyz < 0.2 * vx

    def test_undisturbed_far_field(self, tube):
        """Gas far from all waves is still in its initial state."""
        x = tube.ps.pos[:, 0]
        far_left = (x > -0.48) & (x < -0.45)
        if np.any(far_left):
            assert np.median(tube.ps.rho[far_left]) == pytest.approx(
                1.0, rel=0.1
            )


class TestRiemannProperties:
    from hypothesis import given, settings, strategies as st

    state = st.builds(
        GasState,
        rho=st.floats(min_value=0.05, max_value=10.0),
        u=st.floats(min_value=-1.0, max_value=1.0),
        p=st.floats(min_value=0.05, max_value=10.0),
    )

    @given(left=state, right=state)
    @settings(max_examples=60, deadline=None)
    def test_solution_physical_everywhere(self, left, right):
        """For any non-vacuum problem: positive rho/p, states recovered in
        the far field, p and u continuous across the contact."""
        try:
            p_star, u_star = solve_star_region(left, right)
        except SimulationError:
            return  # vacuum configuration: correctly refused
        xi = np.linspace(-30.0, 30.0, 257)
        rho, u, p = sample_solution(left, right, xi)
        assert np.all(rho > 0)
        assert np.all(p > 0)
        assert rho[0] == pytest.approx(left.rho, rel=1e-9)
        assert rho[-1] == pytest.approx(right.rho, rel=1e-9)
        near = np.array([u_star - 1e-9, u_star + 1e-9])
        _, u_c, p_c = sample_solution(left, right, near)
        assert p_c[0] == pytest.approx(p_c[1], rel=1e-5)
        assert u_c[0] == pytest.approx(u_c[1], abs=1e-5)

    @given(left=state, right=state)
    @settings(max_examples=40, deadline=None)
    def test_star_pressure_consistent(self, left, right):
        """p* satisfies f_L(p*) + f_R(p*) + du = 0 to solver tolerance."""
        from repro.sph.riemann import _pressure_function

        try:
            p_star, _ = solve_star_region(left, right)
        except SimulationError:
            return
        f_l, _ = _pressure_function(p_star, left, 5.0 / 3.0)
        f_r, _ = _pressure_function(p_star, right, 5.0 / 3.0)
        residual = f_l + f_r + (right.u - left.u)
        scale = abs(f_l) + abs(f_r) + abs(right.u - left.u)
        # Absolute floor covers the degenerate already-consistent cases
        # (f_l = f_r = du = 0), where a pure relative test is ill-posed.
        assert abs(residual) <= 1e-6 * scale + 1e-10
