"""Extension benchmark: the online energy-aware DVFS governor.

The offline tuner (``bench_ext_dynamic_dvfs``) needs a full static sweep
before it can decide anything.  The governor closes the loop *inside* a
single run: it explores its candidate clocks once per function, then
exploits the learned model — so one governed run must be compared against
the best clock an oracle static sweep would have picked.

Two claims, on all three of the paper's systems:

* **min-EDP** — a cold governed run (no warm start, no prior sweep)
  beats the best *static* candidate clock on whole-run EDP.  The
  governor wins by mixing clocks per function, which no single static
  point can do.
* **power-cap** — with a binding rolling node-power budget, the governed
  run stays compliant for the entire run (zero violation ticks) while
  climbing from its budget-safe floor clock as high as the projection
  allows.  Strict auditing is on: compliance is not bought with broken
  accounting.
"""

from conftest import write_result

from repro.analysis.edp import run_edp
from repro.config import CSCS_A100, LUMI_G, MINIHPC, SUBSONIC_TURBULENCE
from repro.experiments.runner import run_scaled_experiment
from repro.tuning import GovernorConfig

NUM_STEPS = 100

#: Binding caps (W): below each system's unconstrained rolling peak at
#: the nominal clock, above its floor-clock peak, so the governor has to
#: climb and then hold.
CAPS = {
    "LUMI-G": 2200.0,
    "CSCS-A100": 1100.0,
    "miniHPC": 500.0,
}


def _static_edp(system, freq_mhz, num_steps, particles=None):
    result = run_scaled_experiment(
        system,
        SUBSONIC_TURBULENCE,
        system.cards_per_node,
        gpu_freq_mhz=freq_mhz,
        num_steps=num_steps,
        particles_per_rank=particles,
        privileged_dvfs=True,
    )
    return run_edp(result.run)


def _governed(system, governor, num_steps, particles=None, audit="strict"):
    return run_scaled_experiment(
        system,
        SUBSONIC_TURBULENCE,
        system.cards_per_node,
        num_steps=num_steps,
        particles_per_rank=particles,
        privileged_dvfs=True,
        governor=governor,
        audit=audit,
    )


def _campaign():
    rows = []
    for system in (LUMI_G, CSCS_A100, MINIHPC):
        config = GovernorConfig.for_system("min-edp", system)
        static = {
            freq: _static_edp(system, freq, NUM_STEPS)
            for freq in config.candidates_mhz
        }
        governed = _governed(system, "min-edp", NUM_STEPS)
        cap = CAPS[system.name]
        capped = _governed(
            system,
            GovernorConfig.for_system(
                "power-cap", system, power_cap_watts=cap
            ),
            NUM_STEPS,
        )
        rows.append((system, static, governed, capped))
    return rows


def bench_governor(benchmark, results_dir):
    rows = benchmark.pedantic(_campaign, rounds=1, iterations=1)

    lines = [
        "Online energy-aware DVFS governor "
        f"(Subsonic Turbulence, paper scale, {NUM_STEPS} steps, "
        "one node per system)",
        "",
    ]
    for system, static, governed, capped in rows:
        best_freq = min(static, key=static.get)
        best_edp = static[best_freq]
        gov_edp = run_edp(governed.run)
        report = governed.governor
        lines.append(f"{system.name}:")
        lines.append(
            "  static EDP sweep: "
            + "  ".join(
                f"{freq:.0f}:{edp:.4e}" for freq, edp in sorted(static.items())
            )
        )
        lines.append(
            f"  cold min-edp governed: {gov_edp:.4e}   vs best static "
            f"({best_freq:.0f} MHz): {gov_edp / best_edp:.4f}   "
            f"switches: {report.switches}"
        )
        # The tentpole claim: one cold governed run beats every static
        # candidate, with the accounting audit green (strict mode raised
        # on any finding already).
        assert gov_edp < best_edp
        assert report.decisions > 0
        assert governed.audit is not None and not governed.audit.findings

        cap_report = capped.governor
        cap = CAPS[system.name]
        lines.append(
            f"  power-cap {cap:.0f} W: max rolling "
            f"{cap_report.max_rolling_watts:.1f} W   violations: "
            f"{cap_report.cap_violation_ticks}   switches: "
            f"{cap_report.switches}"
        )
        lines.append("")
        assert cap_report.cap_violation_ticks == 0
        assert cap_report.max_rolling_watts <= cap
        assert capped.audit is not None and not capped.audit.findings

    write_result(results_dir, "ext_governor", "\n".join(lines).rstrip())


def bench_smoke_governor(results_dir):
    """Reduced governor run for CI: miniHPC only."""
    # Paper scale, full length: the strict audit's PMT-vs-Slurm floor
    # needs the exploration phase amortized over the whole run.  One
    # miniHPC run is ~1 s of wall time, so the smoke stays in seconds —
    # it is "reduced" by covering one system instead of three.
    steps, particles = 100, None
    governed = _governed(MINIHPC, "min-edp", steps, particles=particles)
    report = governed.governor
    assert report is not None
    assert report.decisions > 0
    assert governed.audit is not None and not governed.audit.findings

    nominal_edp = _static_edp(MINIHPC, 1410.0, steps, particles=particles)
    gov_edp = run_edp(governed.run)
    # One static reference point keeps the smoke at three runs; the full
    # bench sweeps every candidate and asserts beats-best-static.
    assert gov_edp < nominal_edp

    cap = CAPS["miniHPC"]
    capped = _governed(
        MINIHPC,
        GovernorConfig.for_system("power-cap", MINIHPC, power_cap_watts=cap),
        steps,
        particles=particles,
    )
    cap_report = capped.governor
    assert cap_report.cap_violation_ticks == 0
    assert cap_report.max_rolling_watts <= cap

    lines = [
        f"Governor smoke (miniHPC, paper scale, {steps} steps)",
        f"min-edp EDP vs 1410 MHz: {gov_edp / nominal_edp:.4f}   "
        f"decisions: {report.decisions}   switches: {report.switches}",
        f"power-cap {cap:.0f} W: max rolling "
        f"{cap_report.max_rolling_watts:.1f} W   violations: "
        f"{cap_report.cap_violation_ticks}",
    ]
    write_result(results_dir, "ext_governor_smoke", "\n".join(lines))
