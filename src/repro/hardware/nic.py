"""Network interface device.

The NIC contributes to the node's "Other" energy (the paper notes that the
lack of a NIC sensor prevents attributing "Other" energy to communication —
we model the NIC explicitly so the ablation benchmarks can quantify exactly
what that missing sensor hides).
"""

from __future__ import annotations

from repro.hardware.clock import VirtualClock
from repro.hardware.device import Device
from repro.hardware.dvfs import FrequencyDomain
from repro.hardware.specs import NicSpec


class NicDevice(Device):
    """The node's network interface card."""

    def __init__(self, name: str, clock: VirtualClock, spec: NicSpec) -> None:
        self.spec = spec
        domain = FrequencyDomain(
            supported_hz=(1.0,), nominal_hz=1.0, user_controllable=False
        )
        super().__init__(name, clock, spec.power_model, domain)

    def transfer_time(self, nbytes: float) -> float:
        """Time to move ``nbytes`` through this NIC (latency + bandwidth)."""
        return self.spec.latency_s + nbytes / self.spec.bandwidth_bytes_per_s
