"""Observability smoke: export a Sedov run's telemetry trace and bound it.

Runs one small Sedov blast job with the streaming telemetry collector on,
writes the full artifact bundle (Chrome trace, Prometheus text, CSV/JSONL
dumps), and asserts the structural invariants the exporters promise:

* every trace event carries the Trace Event Format required keys;
* one counter event per retained store point, one duration event per
  recorded region span;
* artifact sizes stay inside sane bounds (non-trivial but far below the
  raw-sample volume — the store's tiering has to have engaged upstream);
* re-running the same seed reproduces the trace byte-for-byte.
"""

import json

import pytest
from conftest import write_result

from repro.config import CSCS_A100, SEDOV_BLAST
from repro.experiments.runner import run_scaled_experiment
from repro.timeseries import export_bundle

REQUIRED_EVENT_KEYS = {"name", "ph", "ts", "pid", "tid"}

NUM_CARDS = 8
NUM_STEPS = 4


def _run_and_export(out_dir):
    result = run_scaled_experiment(
        CSCS_A100, SEDOV_BLAST, NUM_CARDS, num_steps=NUM_STEPS, timeseries=True
    )
    collector = result.timeseries
    artifacts = export_bundle(
        out_dir,
        collector.store,
        collector.spans,
        metadata={"case": SEDOV_BLAST.name, "system": CSCS_A100.name},
        basename="sedov_smoke",
    )
    return collector, artifacts


@pytest.mark.filterwarnings("ignore::UserWarning")
def bench_smoke_timeseries(results_dir, tmp_path):
    """Sedov trace export smoke (`make bench-smoke` / `make bench-timeseries`)."""
    collector, artifacts = _run_and_export(tmp_path / "a")

    doc = json.loads(artifacts["chrome-trace"].read_text())
    events = doc["traceEvents"]
    for ev in events:
        assert REQUIRED_EVENT_KEYS <= set(ev), f"malformed event {ev}"
    counts = {}
    for ev in events:
        counts[ev["ph"]] = counts.get(ev["ph"], 0) + 1

    num_points = sum(
        len(collector.store.channel(n, c).points()["t"])
        for n, c in collector.store.channels()
    )
    assert counts["C"] == num_points
    assert counts["X"] == len(collector.spans)
    assert counts.get("i", 0) == 2  # app_start / app_end

    sizes = {kind: path.stat().st_size for kind, path in artifacts.items()}
    # Non-trivial content, but bounded: the store's tiering caps retained
    # points, so even this multi-node multi-channel run stays small.
    for kind, size in sizes.items():
        assert 200 < size < 4_000_000, f"{kind} size {size} out of bounds"

    # Determinism: the same seed reproduces every artifact byte-for-byte.
    _, again = _run_and_export(tmp_path / "b")
    for kind in artifacts:
        assert artifacts[kind].read_bytes() == again[kind].read_bytes(), (
            f"{kind} not byte-identical across same-seed runs"
        )

    lines = [
        f"Sedov observability smoke: {SEDOV_BLAST.name} on {CSCS_A100.name}, "
        f"{NUM_CARDS} cards, {NUM_STEPS} steps",
        f"channels: {len(collector.store.channels())}",
        f"samples ingested: {collector.store.num_samples}",
        f"retained points: {num_points}",
        f"region spans: {len(collector.spans)}",
        f"store bytes: {collector.store.nbytes}",
        "trace events: "
        + ", ".join(f"{ph}:{counts[ph]}" for ph in sorted(counts)),
        "artifact sizes [bytes]: "
        + ", ".join(f"{kind}:{sizes[kind]}" for kind in sorted(sizes)),
        "determinism: byte-identical across same-seed runs",
    ]
    write_result(results_dir, "timeseries_smoke", "\n".join(lines))
