"""Simulation front end for the in-process (small-N) solver."""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sph.hooks import ProfilingHooks
from repro.sph.particles import ParticleSet
from repro.sph.propagator import Propagator, StepStats


class Simulation:
    """Owns a particle set, a propagator and the profiling hooks.

    >>> ps, box = make_turbulence(n_side=8)
    >>> sim = Simulation(ps, Propagator(box, driver=TurbulenceDriver(box)))
    >>> stats = sim.run(10)
    """

    def __init__(
        self,
        ps: ParticleSet,
        propagator: Propagator,
        hooks: ProfilingHooks | None = None,
    ) -> None:
        self.ps = ps
        self.propagator = propagator
        self.hooks = hooks if hooks is not None else ProfilingHooks()
        self.history: list[StepStats] = []

    def step(self) -> StepStats:
        """Advance one step and record its diagnostics."""
        stats = self.propagator.step(self.ps, self.hooks)
        self.history.append(stats)
        return stats

    def run(self, num_steps: int, validate_every: int = 0) -> list[StepStats]:
        """Advance ``num_steps`` steps; optionally validate particle state."""
        if num_steps <= 0:
            raise SimulationError("num_steps must be positive")
        for k in range(num_steps):
            self.step()
            if validate_every and (k + 1) % validate_every == 0:
                self.ps.validate()
        return self.history[-num_steps:]

    @property
    def time(self) -> float:
        """Accumulated physical (code-unit) time."""
        return sum(s.dt for s in self.history)
