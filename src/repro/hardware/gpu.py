"""GPU devices and the GCD/card distinction.

A :class:`GpuDevice` is the unit one MPI rank drives: a whole card on
NVIDIA systems, a single GCD (GPU Complex Die) on AMD MI250X.  A
:class:`GpuCard` groups the GCDs that share one physical card — and,
crucially, one *power sensor*: HPE/Cray ``pm_counters`` report power per
card, so on LUMI-G two ranks share a single reading.  This asymmetry is the
root of the per-rank attribution inaccuracy the paper discusses (Sections 2
and 3.1); the analysis layer must undo it with hardware-configuration
knowledge.
"""

from __future__ import annotations

from repro.errors import HardwareError
from repro.hardware.clock import VirtualClock
from repro.hardware.device import Device
from repro.hardware.dvfs import FrequencyDomain
from repro.hardware.specs import GpuSpec
from repro.hardware.trace import SummedPowerTrace


class GpuDevice(Device):
    """One schedulable GPU unit (a card, or one GCD of a dual-GCD card)."""

    def __init__(
        self,
        name: str,
        clock: VirtualClock,
        spec: GpuSpec,
        user_controllable_freq: bool = True,
    ) -> None:
        self.spec = spec
        domain = FrequencyDomain(
            supported_hz=spec.supported_freqs_hz,
            nominal_hz=spec.nominal_freq_hz,
            user_controllable=user_controllable_freq,
        )
        super().__init__(name, clock, spec.power_model, domain)

    def peak_flops_now(self) -> float:
        """Peak FLOP rate at the current compute frequency."""
        return self.spec.peak_flops_at(self.frequency.current_hz)

    @property
    def peak_bandwidth(self) -> float:
        """Peak memory bandwidth in bytes/s (compute-frequency independent)."""
        return self.spec.peak_bandwidth


class GpuCard:
    """A physical GPU card: the granularity of the power sensor.

    Parameters
    ----------
    name:
        Card identifier, e.g. ``"node0.card1"``.
    gcds:
        The 1 or 2 :class:`GpuDevice` units on this card.
    card_overhead_watts:
        Constant card-level draw not attributable to either GCD (HBM
        standby, board logic).  Part of what makes per-GCD attribution
        from a per-card sensor imperfect.
    """

    def __init__(
        self, name: str, gcds: list[GpuDevice], card_overhead_watts: float = 0.0
    ) -> None:
        if not 1 <= len(gcds) <= 2:
            raise HardwareError(
                f"a GPU card holds 1 or 2 GCDs, got {len(gcds)}"
            )
        expected = gcds[0].spec.gcds_per_card
        if len(gcds) != expected:
            raise HardwareError(
                f"spec {gcds[0].spec.model!r} expects {expected} GCD(s) per "
                f"card, got {len(gcds)}"
            )
        self.name = name
        self.gcds = list(gcds)
        self.trace = SummedPowerTrace(
            [g.trace for g in gcds], constant_watts=card_overhead_watts
        )

    @property
    def num_gcds(self) -> int:
        """Number of schedulable units on the card."""
        return len(self.gcds)

    def power_at(self, t: float) -> float:
        """Ground-truth card power (what the per-card sensor measures)."""
        return self.trace.power_at(t)

    def energy_between(self, t0: float, t1: float) -> float:
        """Ground-truth card energy over ``[t0, t1]``."""
        return self.trace.energy_between(t0, t1)
