"""Tests for power traces: exact energy integration of step functions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ClockError
from repro.hardware import PowerTrace, SummedPowerTrace


class TestPowerTrace:
    def test_initial_level_holds(self):
        tr = PowerTrace(initial_watts=50.0)
        assert tr.power_at(0.0) == 50.0
        assert tr.power_at(100.0) == 50.0

    def test_energy_constant_power(self):
        tr = PowerTrace(initial_watts=100.0)
        assert tr.energy_between(0.0, 10.0) == pytest.approx(1000.0)

    def test_energy_before_zero_is_zero(self):
        tr = PowerTrace(initial_watts=100.0)
        assert tr.energy_until(-5.0) == 0.0

    def test_step_change(self):
        tr = PowerTrace(initial_watts=10.0)
        tr.set_power(5.0, 30.0)
        assert tr.power_at(4.999) == 10.0
        assert tr.power_at(5.0) == 30.0
        assert tr.energy_between(0.0, 10.0) == pytest.approx(10 * 5 + 30 * 5)

    def test_interval_straddling_breakpoint(self):
        tr = PowerTrace(initial_watts=10.0)
        tr.set_power(5.0, 30.0)
        assert tr.energy_between(4.0, 6.0) == pytest.approx(10 + 30)

    def test_same_power_is_noop(self):
        tr = PowerTrace(initial_watts=10.0)
        tr.set_power(5.0, 10.0)
        assert tr.num_breakpoints == 1

    def test_overwrite_at_same_time(self):
        tr = PowerTrace(initial_watts=10.0)
        tr.set_power(5.0, 30.0)
        tr.set_power(5.0, 40.0)
        assert tr.power_at(5.0) == 40.0
        assert tr.num_breakpoints == 2

    def test_overwrite_merging_with_previous(self):
        tr = PowerTrace(initial_watts=10.0)
        tr.set_power(5.0, 30.0)
        tr.set_power(5.0, 10.0)  # back to the previous level -> merged away
        assert tr.num_breakpoints == 1
        assert tr.power_at(10.0) == 10.0

    def test_backwards_time_rejected(self):
        tr = PowerTrace()
        tr.set_power(5.0, 30.0)
        with pytest.raises(ClockError):
            tr.set_power(4.0, 20.0)

    def test_negative_power_rejected(self):
        tr = PowerTrace()
        with pytest.raises(ValueError):
            tr.set_power(1.0, -5.0)

    def test_reversed_interval_rejected(self):
        tr = PowerTrace(initial_watts=1.0)
        with pytest.raises(ValueError):
            tr.energy_between(5.0, 4.0)

    def test_growth_beyond_initial_capacity(self):
        tr = PowerTrace()
        for i in range(1, 1000):
            tr.set_power(float(i), float(i % 7 + 1))
        assert tr.num_breakpoints > 256
        # Energy over [0, 999] equals the sum of unit-length segments.
        expected = sum((i % 7 + 1) for i in range(1, 999))
        assert tr.energy_between(1.0, 999.0) == pytest.approx(expected)

    def test_sample_vectorized_matches_scalar(self):
        tr = PowerTrace(initial_watts=5.0)
        tr.set_power(1.0, 10.0)
        tr.set_power(2.0, 20.0)
        times = np.array([0.0, 0.5, 1.0, 1.5, 2.0, 3.0])
        sampled = tr.sample(times)
        expected = [tr.power_at(t) for t in times]
        assert np.allclose(sampled, expected)

    def test_breakpoints_returns_copies(self):
        tr = PowerTrace(initial_watts=5.0)
        tr.set_power(1.0, 10.0)
        times, watts = tr.breakpoints()
        times[0] = 99.0
        assert tr.power_at(0.0) == 5.0

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=10.0),
                st.floats(min_value=0.0, max_value=500.0),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50)
    def test_energy_additivity(self, segments):
        """E[0,T] == E[0,t] + E[t,T] for any split point t."""
        tr = PowerTrace(initial_watts=25.0)
        t = 0.0
        for dt, watts in segments:
            t += dt
            tr.set_power(t, watts)
        total_t = t + 1.0
        mid = total_t * 0.37
        whole = tr.energy_between(0.0, total_t)
        parts = tr.energy_between(0.0, mid) + tr.energy_between(mid, total_t)
        assert whole == pytest.approx(parts, rel=1e-12, abs=1e-9)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=10.0),
                st.floats(min_value=0.0, max_value=500.0),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50)
    def test_energy_matches_riemann_sum(self, segments):
        """Exact integration agrees with a fine Riemann sum."""
        tr = PowerTrace(initial_watts=10.0)
        t = 0.0
        for dt, watts in segments:
            t += dt
            tr.set_power(t, watts)
        total_t = t + 0.5
        n = 20001
        grid = np.linspace(0.0, total_t, n)
        mids = 0.5 * (grid[:-1] + grid[1:])
        riemann = float(np.sum(tr.sample(mids)) * (total_t / (n - 1)))
        exact = tr.energy_between(0.0, total_t)
        assert exact == pytest.approx(riemann, rel=2e-2, abs=1e-3)


class TestSummedPowerTrace:
    def test_sums_components_and_constant(self):
        a = PowerTrace(initial_watts=10.0)
        b = PowerTrace(initial_watts=20.0)
        summed = SummedPowerTrace([a, b], constant_watts=5.0)
        assert summed.power_at(0.0) == 35.0
        assert summed.energy_between(0.0, 2.0) == pytest.approx(70.0)

    def test_tracks_component_changes(self):
        a = PowerTrace(initial_watts=0.0)
        summed = SummedPowerTrace([a], constant_watts=1.0)
        a.set_power(1.0, 9.0)
        assert summed.power_at(0.5) == 1.0
        assert summed.power_at(1.5) == 10.0

    def test_energy_until_zero(self):
        summed = SummedPowerTrace([PowerTrace(initial_watts=5.0)])
        assert summed.energy_until(0.0) == 0.0

    def test_negative_constant_rejected(self):
        with pytest.raises(ValueError):
            SummedPowerTrace([], constant_watts=-1.0)

    def test_reversed_interval_rejected(self):
        summed = SummedPowerTrace([PowerTrace()])
        with pytest.raises(ValueError):
            summed.energy_between(2.0, 1.0)

    def test_sample_vectorized(self):
        a = PowerTrace(initial_watts=2.0)
        a.set_power(1.0, 4.0)
        summed = SummedPowerTrace([a], constant_watts=1.0)
        out = summed.sample(np.array([0.5, 1.5]))
        assert np.allclose(out, [3.0, 5.0])
