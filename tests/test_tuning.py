"""Tests for the dynamic per-function DVFS extension (paper future work)."""

import pytest

from repro.config import MINIHPC, SUBSONIC_TURBULENCE
from repro.errors import ConfigurationError, SimulationError
from repro.tuning import (
    DynamicDvfsApplication,
    PerFunctionPolicy,
    StaticPolicy,
    build_oracle_policy,
    tune_per_function,
)
from repro.tuning.optimizer import run_dynamic
from repro.tuning.policy import FunctionSweepPoint

FREQS = (1410.0, 1230.0, 1005.0)
SIDE = 450.0


def sweep_point(fn, freq, seconds, joules):
    return FunctionSweepPoint(
        function=fn, freq_mhz=freq, seconds=seconds, joules=joules
    )


class TestPolicies:
    def test_static_policy(self):
        policy = StaticPolicy(1200.0)
        assert policy.frequency_for("Anything") == 1200.0

    def test_per_function_with_default(self):
        policy = PerFunctionPolicy(default_mhz=1410.0, table={"A": 1005.0})
        assert policy.frequency_for("A") == 1005.0
        assert policy.frequency_for("B") == 1410.0

    def test_inherit_missing(self):
        policy = PerFunctionPolicy(
            default_mhz=1410.0, table={"A": 1005.0}, inherit_missing=True
        )
        assert policy.frequency_for("B") is None


class TestOracleBuilder:
    def make_points(self):
        return [
            # Compute-bound: stretches at low frequency, EDP worse.
            sweep_point("ME", 1410.0, 10.0, 2000.0),
            sweep_point("ME", 1005.0, 14.0, 1800.0),
            # Memory-bound: same time, less energy at low frequency.
            sweep_point("Density", 1410.0, 5.0, 1000.0),
            sweep_point("Density", 1005.0, 5.0, 700.0),
        ]

    def test_edp_objective(self):
        policy = build_oracle_policy(self.make_points(), 1410.0)
        assert policy.frequency_for("ME") == 1410.0
        assert policy.frequency_for("Density") == 1005.0

    def test_energy_objective_unconstrained(self):
        policy = build_oracle_policy(
            self.make_points(), 1410.0, objective="energy"
        )
        # Pure energy minimization down-clocks even the compute-bound kernel.
        assert policy.frequency_for("ME") == 1005.0

    def test_energy_objective_with_slowdown_constraint(self):
        policy = build_oracle_policy(
            self.make_points(), 1410.0, objective="energy", max_slowdown=1.1
        )
        # 14 s > 1.1 * 10 s: the low frequency is infeasible for ME.
        assert policy.frequency_for("ME") == 1410.0
        assert policy.frequency_for("Density") == 1005.0

    def test_tolerance_prefers_lower_frequency(self):
        points = [
            sweep_point("F", 1410.0, 10.0, 1000.0),  # EDP 10000 (best)
            sweep_point("F", 1005.0, 10.0, 1020.0),  # EDP 10200 (within 3%)
        ]
        assert build_oracle_policy(points, 1410.0).frequency_for("F") == 1410.0
        assert (
            build_oracle_policy(points, 1410.0, tolerance=0.03).frequency_for("F")
            == 1005.0
        )

    def test_min_function_seconds_exempts_short_functions(self):
        points = self.make_points() + [
            sweep_point("Tiny", 1410.0, 0.01, 1.0),
            sweep_point("Tiny", 1005.0, 0.01, 0.1),
        ]
        policy = build_oracle_policy(points, 1410.0, min_function_seconds=1.0)
        assert policy.inherit_missing
        assert policy.frequency_for("Tiny") is None
        assert policy.frequency_for("Density") == 1005.0

    def test_missing_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            build_oracle_policy([sweep_point("F", 1005.0, 1.0, 1.0)], 1410.0)

    def test_unknown_objective_rejected(self):
        with pytest.raises(ConfigurationError):
            build_oracle_policy(self.make_points(), 1410.0, objective="power")

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            build_oracle_policy(self.make_points(), 1410.0, tolerance=-0.1)


class TestDynamicApplication:
    def test_switch_counting_and_snapping(self):
        policy = PerFunctionPolicy(
            default_mhz=1410.0,
            # 1200 is not a supported A100 step; must snap to 1185/1230.
            table={"MomentumEnergy": 1200.0},
        )
        run, switches = run_dynamic(
            MINIHPC,
            SUBSONIC_TURBULENCE,
            num_cards=2,
            policy=policy,
            num_steps=2,
            particles_per_rank=1e7,
        )
        # ME switches down, the next function switches back: 2 per step.
        assert switches == 4
        assert run.num_ranks == 2

    def test_static_policy_never_switches_after_start(self):
        policy = StaticPolicy(1410.0)
        _, switches = run_dynamic(
            MINIHPC,
            SUBSONIC_TURBULENCE,
            num_cards=2,
            policy=policy,
            num_steps=2,
            particles_per_rank=1e7,
        )
        assert switches == 0

    def test_negative_latency_rejected(self):
        with pytest.raises(SimulationError):
            # Engine internals irrelevant; the constructor validates first.
            DynamicDvfsApplication(
                engine=None,  # type: ignore[arg-type]
                profiler=None,  # type: ignore[arg-type]
                perfmodel=None,  # type: ignore[arg-type]
                functions=("A",),
                num_steps=1,
                test_case_name="t",
                policy=StaticPolicy(1410.0),
                switch_latency_s=-1.0,
            )


class TestEndToEndTuning:
    @pytest.fixture(scope="class")
    def report(self):
        return tune_per_function(
            MINIHPC,
            SUBSONIC_TURBULENCE,
            num_cards=2,
            freqs_mhz=FREQS,
            num_steps=10,
            particles_per_rank=SIDE**3,
        )

    def test_dynamic_beats_baseline_edp(self, report):
        assert report.edp_vs_baseline < 0.95

    def test_dynamic_competitive_with_best_static(self, report):
        assert report.edp_vs_best_static < 1.05

    def test_policy_downclocks_memory_bound_functions(self, report):
        assert report.policy.table["Density"] == 1005.0
        assert report.policy.table["DomainDecompAndSync"] == 1005.0

    def test_few_switches(self, report):
        # Near-ties collapse + short-function exemption keep switching rare.
        assert report.switch_count <= 3 * report.dynamic_run.num_steps

    def test_constrained_tuning_is_pareto(self):
        """Energy savings under a tight slowdown budget: a point no static
        frequency reaches (static low-clock violates the budget, static
        nominal saves nothing)."""
        report = tune_per_function(
            MINIHPC,
            SUBSONIC_TURBULENCE,
            num_cards=2,
            freqs_mhz=FREQS,
            num_steps=10,
            particles_per_rank=SIDE**3,
            objective="energy",
            max_slowdown=1.03,
        )
        dilation = report.dynamic_seconds / report.baseline_seconds
        assert dilation < 1.04  # honours the budget (plus switch overhead)
        assert report.edp_vs_baseline < 0.97  # and still saves energy
        # Compute-bound kernels stay fast, memory-bound ones down-clock.
        assert report.policy.table["MomentumEnergy"] == 1410.0
        assert report.policy.table["Density"] == 1005.0
