"""Exporter tests: Chrome-trace round-trip, Prometheus text, determinism."""

import json
import re

import numpy as np
import pytest

import repro.pmt as pmt
from repro.config import CSCS_A100, LUMI_G, SEDOV_BLAST
from repro.hardware import Node, PowerTrace, VirtualClock
from repro.instrumentation.reporting import artifact_report
from repro.pmt import PmtSampler
from repro.sensors import NodeTelemetry
from repro.timeseries import (
    SampleStore,
    SpanRecorder,
    TimeseriesCollector,
    chrome_trace,
    escape_label_value,
    export_bundle,
    prometheus_text,
    prometheus_text_multi,
    write_chrome_trace,
    write_csv,
    write_jsonl,
    write_trace_csv,
)

#: Keys the Trace Event Format requires on every event.
REQUIRED_EVENT_KEYS = {"name", "ph", "ts", "pid", "tid"}

def _small_store():
    store = SampleStore()
    for k in range(5):
        t = float(k)
        store.record(0, "node", t, 100.0 + k, 100.0 * t)
        store.record(0, "gpu0", t, 40.0, 40.0 * t, quality="ok")
        store.record(1, "node", t, 90.0, 90.0 * t)
    spans = SpanRecorder()
    spans.begin(0, 0.5, node_index=0)
    spans.end(0, "Density", 1.5)
    spans.begin(1, 1.0, node_index=1)
    spans.end(1, "IAD", 2.0)
    spans.instant("app_start", 0.0)
    return store, spans


class TestChromeTrace:
    def test_roundtrip_validates_required_keys(self, tmp_path):
        store, spans = _small_store()
        path = tmp_path / "trace.json"
        write_chrome_trace(path, store, spans, metadata={"case": "unit"})
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["case"] == "unit"
        events = doc["traceEvents"]
        assert events, "trace must contain events"
        for ev in events:
            assert REQUIRED_EVENT_KEYS <= set(ev), f"missing keys in {ev}"
            assert ev["ph"] in {"M", "C", "X", "i"}
            if ev["ph"] == "X":
                assert "dur" in ev and ev["dur"] >= 0
            if ev["ph"] == "C":
                assert "args" in ev and "watts" in ev["args"]

    def test_event_counts_match_store(self):
        store, spans = _small_store()
        doc = chrome_trace(store, spans)
        by_phase = {}
        for ev in doc["traceEvents"]:
            by_phase.setdefault(ev["ph"], []).append(ev)
        assert len(by_phase["C"]) == store.num_samples == 15
        assert len(by_phase["X"]) == len(spans) == 2
        assert len(by_phase["i"]) == 1
        # One process-name metadata record per node.
        names = [
            e for e in by_phase["M"] if e["name"] == "process_name"
        ]
        assert len(names) == 2

    def test_timestamps_are_microseconds_and_sorted(self):
        store, spans = _small_store()
        events = chrome_trace(store, spans)["traceEvents"]
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        density = next(e for e in events if e["ph"] == "X")
        assert density["ts"] == pytest.approx(0.5e6)
        assert density["dur"] == pytest.approx(1.0e6)

    def test_span_names_and_rank_threads(self):
        store, spans = _small_store()
        events = chrome_trace(store, spans)["traceEvents"]
        x = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in x} == {"Density", "IAD"}
        assert all(e["cat"] == "region" for e in x)
        threads = [
            e for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert any("rank" in str(e["args"]) for e in threads)


class TestPrometheus:
    def test_text_format(self):
        store, spans = _small_store()
        text = prometheus_text(store)
        lines = text.splitlines()
        assert "# HELP repro_power_watts" in text
        assert "# TYPE repro_power_watts gauge" in text
        assert "# TYPE repro_energy_joules_total counter" in text
        assert any(
            l.startswith('repro_power_watts{channel="node",node="0"}')
            for l in lines
        )
        assert text.endswith("\n")

    def test_latest_values_exported(self):
        store, spans = _small_store()
        text = prometheus_text(store)
        # Latest node-0 "node" sample is 104 W / 400 J.
        assert 'repro_power_watts{channel="node",node="0"} 104' in text
        assert 'repro_energy_joules_total{channel="node",node="0"} 400' in text
        assert 'repro_samples_total{channel="node",node="0"} 5' in text

    def test_custom_prefix(self):
        store, _ = _small_store()
        assert "myrun_power_watts" in prometheus_text(store, prefix="myrun")


#: One sample line of the exposition format: metric{labels} value — the
#: labels section must be a single line of properly quoted pairs.
SAMPLE_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*\{(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?)*\} '
    r"-?[0-9.eE+\-]+$"
)


class TestPrometheusEscaping:
    """Hostile channel names must never corrupt the scrape output."""

    HOSTILE = 'gpu"0\\power\nrate'

    def _hostile_store(self):
        store = SampleStore()
        store.record(0, self.HOSTILE, 1.0, 50.0, 50.0)
        return store

    def test_escape_label_value(self):
        assert escape_label_value("plain") == "plain"
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"
        # Backslash escapes first, so the escape of '"' survives intact.
        assert escape_label_value('\\"') == '\\\\\\"'

    def test_hostile_channel_name_stays_on_one_line(self):
        text = prometheus_text(self._hostile_store())
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            assert SAMPLE_LINE.match(line), f"unparseable sample: {line!r}"
        # The raw newline/quote must not appear unescaped anywhere.
        assert 'channel="gpu\\"0\\\\power\\nrate"' in text

    def test_hostile_tenant_label_escaped_in_multi(self):
        stores = {'ten"ant\n1': self._hostile_store()}
        text = prometheus_text_multi(stores)
        assert 'tenant="ten\\"ant\\n1"' in text
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            assert SAMPLE_LINE.match(line), f"unparseable sample: {line!r}"

    def test_multi_single_header_per_family(self):
        stores = {
            "a": self._hostile_store(),
            "b": self._hostile_store(),
        }
        text = prometheus_text_multi(stores)
        assert text.count("# TYPE repro_power_watts gauge") == 1
        assert text.count("# HELP repro_power_watts") == 1
        # Both tenants' samples present, tenants sorted.
        a = text.index('tenant="a"')
        b = text.index('tenant="b"')
        assert a < b

    def test_extra_labels_escaped(self):
        store = _small_store()[0]
        text = prometheus_text(store, extra_labels={"job": 'x"y'})
        assert 'job="x\\"y"' in text


class TestDumpsAndBundle:
    def test_csv_and_jsonl_agree(self, tmp_path):
        store, _ = _small_store()
        csv_path = tmp_path / "out.csv"
        jsonl_path = tmp_path / "out.jsonl"
        write_csv(csv_path, store)
        write_jsonl(jsonl_path, store)
        csv_rows = csv_path.read_text().strip().splitlines()
        jsonl_rows = jsonl_path.read_text().strip().splitlines()
        assert len(csv_rows) - 1 == len(jsonl_rows) == store.num_samples
        assert csv_rows[0] == "node,channel,tier,time_s,watts,joules,quality"
        first = json.loads(jsonl_rows[0])
        assert set(first) == {
            "node", "channel", "tier", "time_s", "watts", "joules", "quality"
        }

    def test_export_bundle_writes_all_kinds(self, tmp_path):
        store, spans = _small_store()
        artifacts = export_bundle(tmp_path, store, spans, basename="unit")
        assert set(artifacts) == {"chrome-trace", "prometheus", "csv", "jsonl"}
        for path in artifacts.values():
            assert path.exists() and path.stat().st_size > 0
        report = artifact_report(artifacts)
        assert report.startswith("Exported artifacts:")
        for kind in artifacts:
            assert kind in report

    def test_artifact_report_empty(self):
        assert artifact_report({}) == "Exported artifacts: none"


class TestDeterminism:
    """S6: exports must be byte-identical across same-seed runs."""

    def _run_once(self):
        clock = VirtualClock()
        node = Node("n0", clock, LUMI_G.node_spec)
        tel = NodeTelemetry(node, LUMI_G, clock)
        collector = TimeseriesCollector()
        sampler = PmtSampler(pmt.create("cray", telemetry=tel), interval_s=1.0)
        collector.attach(0, sampler)
        sampler.start()
        collector.spans.begin(0, 0.0, node_index=0)
        clock.advance(5.0)
        collector.spans.end(0, "Density", 5.0)
        sampler.stop()
        return collector

    def test_byte_identical_exports(self, tmp_path):
        a = self._run_once()
        b = self._run_once()
        for sub, coll in (("a", a), ("b", b)):
            out = tmp_path / sub
            out.mkdir()
            export_bundle(out, coll.store, coll.spans, basename="run")
        for name in (
            "run.trace.json",
            "run.prom",
            "run.samples.csv",
            "run.samples.jsonl",
        ):
            assert (tmp_path / "a" / name).read_bytes() == (
                tmp_path / "b" / name
            ).read_bytes(), f"{name} differs between same-seed runs"

    def test_channel_iteration_order_is_insertion_independent(self, tmp_path):
        s1, s2 = SampleStore(), SampleStore()
        s1.record(0, "a", 0.0, 1.0, 0.0)
        s1.record(1, "b", 0.0, 2.0, 0.0)
        s2.record(1, "b", 0.0, 2.0, 0.0)
        s2.record(0, "a", 0.0, 1.0, 0.0)
        assert prometheus_text(s1) == prometheus_text(s2)
        p1, p2 = tmp_path / "1.json", tmp_path / "2.json"
        write_chrome_trace(p1, s1)
        write_chrome_trace(p2, s2)
        assert p1.read_bytes() == p2.read_bytes()


class TestPowerTraceAsArrays:
    """S1: the public read-only view exporters consume."""

    def test_views_match_breakpoints(self):
        trace = PowerTrace(initial_watts=100.0)
        trace.set_power(1.0, 200.0)
        trace.set_power(3.0, 50.0)
        times, watts = trace.as_arrays()
        np.testing.assert_array_equal(times, [0.0, 1.0, 3.0])
        np.testing.assert_array_equal(watts, [100.0, 200.0, 50.0])

    def test_views_are_read_only(self):
        trace = PowerTrace(initial_watts=100.0)
        times, watts = trace.as_arrays()
        with pytest.raises(ValueError):
            times[0] = 5.0
        with pytest.raises(ValueError):
            watts[0] = 5.0

    def test_snapshot_semantics(self):
        trace = PowerTrace(initial_watts=100.0)
        times, watts = trace.as_arrays()
        assert len(times) == 1
        trace.set_power(1.0, 200.0)
        t2, w2 = trace.as_arrays()
        assert len(t2) == 2
        assert len(times) == 1  # earlier view is a stable snapshot

    def test_write_trace_csv(self, tmp_path):
        trace = PowerTrace(initial_watts=100.0)
        trace.set_power(2.0, 300.0)
        path = tmp_path / "trace.csv"
        write_trace_csv(path, "gpu0", trace)
        rows = path.read_text().strip().splitlines()
        assert rows[0] == "time_s,watts"
        assert rows[1] == "0,100"
        assert rows[2] == "2,300"


@pytest.mark.filterwarnings("ignore::UserWarning")
class TestEndToEndExport:
    def test_sedov_export_is_valid_and_deterministic(self, tmp_path):
        from repro.experiments.runner import run_scaled_experiment

        def run(out):
            result = run_scaled_experiment(
                CSCS_A100, SEDOV_BLAST, 8, num_steps=2, timeseries=True
            )
            coll = result.timeseries
            out.mkdir(exist_ok=True)
            return export_bundle(out, coll.store, coll.spans, basename="sedov")

        arts_a = run(tmp_path / "a")
        arts_b = run(tmp_path / "b")
        doc = json.loads(arts_a["chrome-trace"].read_text())
        for ev in doc["traceEvents"]:
            assert REQUIRED_EVENT_KEYS <= set(ev)
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        assert any(e["ph"] == "C" for e in doc["traceEvents"])
        for kind in arts_a:
            assert arts_a[kind].read_bytes() == arts_b[kind].read_bytes()
