"""Declarative campaign specifications and their expansion.

A :class:`CampaignSpec` names the axes of a sweep — systems × test cases
× card counts × frequencies × problem sizes × seeds — without saying
anything about *how* it executes.  :func:`expand` takes the cartesian
product and resolves every point to a fully-determined
:class:`~repro.campaign.keys.RunKey` (step counts and particle counts
filled in from the test-case defaults), in a deterministic order that is
independent of worker count or cache state.

Execution settings (worker shards, cache directory, progress reporting)
deliberately do not appear here: they belong to the executor, so they can
never leak into the content-addressed run identity.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.campaign.keys import RunKey, resolve_test_case
from repro.config import get_system
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CampaignSpec:
    """The axes of one sweep of independent instrumented runs."""

    name: str
    systems: tuple[str, ...]
    test_cases: tuple[str, ...]
    card_counts: tuple[int, ...]
    #: Requested compute clocks; ``None`` means the system default.
    freqs_mhz: tuple[float | None, ...] = (None,)
    #: Particles per rank; ``None`` resolves to the case's paper value.
    particles_per_rank: tuple[float | None, ...] = (None,)
    #: Steps per run; ``None`` resolves to the case's paper value.
    num_steps: int | None = None
    seeds: tuple[int, ...] = (0,)
    #: Online governor policy applied to every run (``None`` = static
    #: clocks).  A scalar, not an axis: sweeps compare governed against
    #: static runs by running two campaigns, which keeps the cache
    #: identity of classic campaigns untouched.
    governor: str | None = None

    def __post_init__(self) -> None:
        # Tolerate lists from CLI argument parsing.
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, list):
                object.__setattr__(self, f.name, tuple(value))
        for axis in (
            "systems", "test_cases", "card_counts", "freqs_mhz",
            "particles_per_rank", "seeds",
        ):
            if not getattr(self, axis):
                raise ConfigurationError(f"campaign axis {axis!r} is empty")
        if self.num_steps is not None and self.num_steps <= 0:
            raise ConfigurationError("num_steps must be positive")
        for name in self.systems:
            get_system(name)  # raises on unknown systems
        for name in self.test_cases:
            resolve_test_case(name)

    @property
    def num_points(self) -> int:
        """Size of the cartesian product."""
        return (
            len(self.systems)
            * len(self.test_cases)
            * len(self.card_counts)
            * len(self.freqs_mhz)
            * len(self.particles_per_rank)
            * len(self.seeds)
        )


def expand(spec: CampaignSpec) -> tuple[RunKey, ...]:
    """The spec's runs as fully-resolved keys, in deterministic order."""
    keys = []
    for system in spec.systems:
        for case_name in spec.test_cases:
            case = resolve_test_case(case_name)
            steps = spec.num_steps if spec.num_steps is not None else case.num_steps
            for cards in spec.card_counts:
                for particles in spec.particles_per_rank:
                    resolved = (
                        particles
                        if particles is not None
                        else case.particles_per_gpu
                    )
                    for freq in spec.freqs_mhz:
                        for seed in spec.seeds:
                            keys.append(
                                RunKey(
                                    system=system,
                                    test_case=case_name,
                                    num_cards=cards,
                                    gpu_freq_mhz=(
                                        None if freq is None else float(freq)
                                    ),
                                    num_steps=steps,
                                    particles_per_rank=float(resolved),
                                    seed=seed,
                                    governor=spec.governor,
                                )
                            )
    if len(set(keys)) != len(keys):
        raise ConfigurationError(
            f"campaign {spec.name!r} expands to duplicate run keys "
            "(repeated axis values?)"
        )
    return tuple(keys)
