"""Momentum and energy equations (the ``MomentumEnergy`` loop function).

IAD-corrected pressure gradients with Monaghan signal-velocity artificial
viscosity and the Balsara shear switch::

    dv_i/dt = - sum_j m_j [ P_i/rho_i^2 A_i,ij + P_j/rho_j^2 A_j,ij
                            + Pi_ij Abar_ij ]
    du_i/dt =   P_i/rho_i^2 sum_j m_j (v_i - v_j) . A_i,ij
              + 1/2 sum_j m_j Pi_ij (v_i - v_j) . Abar_ij

with ``Abar = (A_i + A_j)/2`` and, for approaching pairs
(``w = v_ij . rhat < 0``)::

    v_sig = c_i + c_j - 3 w
    Pi_ij = - (alpha/2) xi_ij v_sig w / rhobar_ij        (>= 0)

where ``xi`` is the pairwise-averaged Balsara factor.  Pairwise forces are
exactly antisymmetric (each A flips sign under i<->j), so total momentum
is conserved to round-off — one of the library's property tests.

On the half-pair path (:class:`~repro.sph.pair_cache.StepContext`) each
undirected pair's force term is computed once and scattered to both ends
with opposite signs — antisymmetry holds *by construction*, not merely to
evaluation-order round-off — and the IAD gradient vectors computed by
``IADVelocityDivCurl`` earlier in the step are reused instead of being
re-evaluated.

The per-particle maximum signal velocity is stored for the subsequent
``Timestep`` function, mirroring SPH-EXA's kernel fusion.
"""

from __future__ import annotations

import numpy as np

from repro.sph import csolver
from repro.sph.kernels.cubic_spline import _SIGMA_3D, CubicSplineKernel
from repro.sph.neighbors import PairList
from repro.sph.pair_cache import (
    CsrStepContext,
    StepContext,
    scatter_sum,
    scatter_sum_rows,
    scatter_sum_sym,
    scatter_sum_sym_rows,
)
from repro.sph.particles import ParticleSet
from repro.sph.physics.iad import iad_vectors

DEFAULT_AV_ALPHA = 1.0

#: Small number guarding the Balsara denominator.
_BALSARA_EPS = 1e-4


def balsara_factor(ps: ParticleSet) -> np.ndarray:
    """Balsara (1995) shear limiter in [0, 1] per particle."""
    abs_div = np.abs(ps.div_v)
    noise = _BALSARA_EPS * ps.c / np.maximum(ps.h, 1e-300)
    return abs_div / (abs_div + ps.curl_v + noise + 1e-300)


def _pair_viscosity(
    ps: ParticleSet,
    i: np.ndarray,
    j: np.ndarray,
    v_ij: np.ndarray,
    dx: np.ndarray,
    r: np.ndarray,
    av_alpha: float,
    use_balsara: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-pair AV strength ``Pi_ij`` and signal velocity ``v_sig``.

    Both are symmetric under i <-> j (``w = v_ij . dx / r`` flips both
    factors), so the half-pair path evaluates them once per pair.
    """
    r_safe = np.maximum(r, 1e-300)
    w_pair = np.einsum("ka,ka->k", v_ij, dx) / r_safe
    v_sig = ps.c[i] + ps.c[j] - 3.0 * w_pair
    rho_bar = 0.5 * (ps.rho[i] + ps.rho[j])
    if use_balsara:
        bal = balsara_factor(ps)
        xi = 0.5 * (bal[i] + bal[j])
    else:
        xi = np.ones(len(i))
    visc = np.where(
        w_pair < 0.0,
        -0.5 * av_alpha * xi * v_sig * w_pair / rho_bar,
        0.0,
    )
    return visc, v_sig


def _momentum_energy_csr(
    ps: ParticleSet,
    ctx: CsrStepContext,
    av_alpha: float,
    use_balsara: bool,
    omega,
) -> None:
    if ctx.cfast is not None:
        if omega is None:
            pr = ps.p / ps.rho**2
        else:
            pr = ps.p / (omega * ps.rho**2)
        bal = balsara_factor(ps) if use_balsara else None
        acc, du, v_sig_seg = csolver.momentum(
            ctx.cfast, ctx, ps.mass, ps.rho, pr, ps.c, bal, ps.vel,
            np.ascontiguousarray(ps.c_iad), _SIGMA_3D, av_alpha,
        )
        ps.acc = acc
        ps.du = du
        ps.v_sig_max = np.maximum(v_sig_seg, ps.c)
        return

    a_own, a_oth = ctx.iad_vectors(ps.c_iad)
    a_bar = ctx.scratch("ph_abar", 3)
    np.add(a_own, a_oth, out=a_bar)
    a_bar *= 0.5

    # Pressure-over-rho^2 per particle, gathered per entry — bitwise the
    # same values as the oracle's gather-then-divide, at O(N) divisions.
    if omega is None:
        pr = ps.p / ps.rho**2
    else:
        pr = ps.p / (omega * ps.rho**2)
    pr_own = ctx.gather(pr, "row", "ph_prown")
    pr_oth = ctx.gather(pr, "col", "ph_proth")

    v_ij = ctx.gather_rows(ps.vel, "row", "ph_vij")
    v_ij -= ctx.gather_rows(ps.vel, "col", "ph_vcol")

    # Per-entry AV strength and signal velocity (Monaghan + Balsara).
    w_pair = ctx.scratch("ph_wpair")
    np.einsum("ka,ka->k", v_ij, ctx.dx_f, out=w_pair)
    w_pair /= np.maximum(ctx.r_f, 1e-300)
    v_sig = ctx.gather(ps.c, "row", "ph_vsig")
    v_sig += ctx.gather(ps.c, "col", "ph_cj")
    v_sig -= 3.0 * w_pair
    rho_bar = ctx.gather(ps.rho, "row", "ph_rbar")
    rho_bar += ctx.gather(ps.rho, "col", "ph_rhoj")
    rho_bar *= 0.5
    visc = ctx.scratch("ph_visc")
    np.multiply(v_sig, w_pair, out=visc)
    visc *= -0.5 * av_alpha
    if use_balsara:
        bal = balsara_factor(ps)
        xi = ctx.gather(bal, "row", "ph_xi")
        xi += ctx.gather(bal, "col", "ph_xij")
        xi *= 0.5
        visc *= xi
    visc /= rho_bar
    visc[w_pair >= 0.0] = 0.0

    # Force term per entry; the mirrored entry negates every A vector
    # and keeps the scalar weights, so momentum conserves to round-off.
    term = ctx.scratch("ph_term", 3)
    np.multiply(pr_own[:, None], a_own, out=term)
    term += pr_oth[:, None] * a_oth
    term += visc[:, None] * a_bar
    m_j = ctx.gather(ps.mass, "col", "ph_mj2")
    term *= m_j[:, None]
    np.negative(term, out=term)
    ps.acc = ctx.reduce_sum_rows(term)

    # Internal energy rate, oracle formulation per entry.
    grad_dot_own = ctx.scratch("ph_gdo")
    np.einsum("ka,ka->k", v_ij, a_own, out=grad_dot_own)
    grad_dot_bar = ctx.scratch("ph_gdb")
    np.einsum("ka,ka->k", v_ij, a_bar, out=grad_dot_bar)
    du = grad_dot_own
    du *= pr_own
    grad_dot_bar *= visc
    grad_dot_bar *= 0.5
    du += grad_dot_bar
    du *= m_j
    ps.du = ctx.reduce_sum(du)

    # Maximum signal velocity per particle, for the CFL condition.
    ps.v_sig_max = np.maximum(ctx.reduce_max(v_sig), ps.c)


def _momentum_energy_cached(
    ps: ParticleSet,
    ctx: StepContext,
    av_alpha: float,
    use_balsara: bool,
    omega,
) -> None:
    hp = ctx.pairs
    i, j = hp.i, hp.j
    a_i, a_j = ctx.iad_vectors(ps.c_iad)
    a_bar = 0.5 * (a_i + a_j)

    if omega is None:
        pr_i = ps.p[i] / ps.rho[i] ** 2
        pr_j = ps.p[j] / ps.rho[j] ** 2
    else:
        pr_i = ps.p[i] / (omega[i] * ps.rho[i] ** 2)
        pr_j = ps.p[j] / (omega[j] * ps.rho[j] ** 2)

    v_ij = ps.vel[i] - ps.vel[j]
    visc, v_sig = _pair_viscosity(
        ps, i, j, v_ij, hp.dx, hp.r, av_alpha, use_balsara
    )

    # One force term per undirected pair; i gets -m_j T, j gets +m_i T
    # (all A vectors flip sign under i <-> j, the scalar weights do not).
    term = (
        pr_i[:, None] * a_i + pr_j[:, None] * a_j + visc[:, None] * a_bar
    )
    ps.acc = scatter_sum_sym_rows(
        i,
        j,
        -ps.mass[j][:, None] * term,
        ps.mass[i][:, None] * term,
        ps.n,
    )

    # Internal energy rate: each end pairs its own gradient vector with
    # the shared viscous term (v_ij . A flips sign twice, so both ends'
    # terms keep the same form).
    grad_dot_i = np.einsum("ka,ka->k", v_ij, a_i)
    grad_dot_j = np.einsum("ka,ka->k", v_ij, a_j)
    grad_dot_bar = 0.5 * (grad_dot_i + grad_dot_j)
    ps.du = scatter_sum_sym(
        i,
        j,
        ps.mass[j] * (pr_i * grad_dot_i + 0.5 * visc * grad_dot_bar),
        ps.mass[i] * (pr_j * grad_dot_j + 0.5 * visc * grad_dot_bar),
        ps.n,
    )

    # Maximum signal velocity per particle, for the CFL condition.
    v_sig_max = np.zeros(ps.n)
    np.maximum.at(
        v_sig_max, np.concatenate([i, j]), np.concatenate([v_sig, v_sig])
    )
    ps.v_sig_max = np.maximum(v_sig_max, ps.c)


def compute_momentum_energy(
    ps: ParticleSet,
    pairs: PairList | StepContext,
    kernel=CubicSplineKernel,
    av_alpha: float = DEFAULT_AV_ALPHA,
    use_balsara: bool = True,
    omega=None,
) -> None:
    """Fill ``ps.acc``, ``ps.du`` and ``ps.v_sig_max``.

    ``omega`` optionally supplies the grad-h correction factors
    (:func:`repro.sph.physics.grad_h.compute_omega`); pressure terms then
    become ``P / (Omega rho^2)``.  Pairwise antisymmetry — and therefore
    exact momentum conservation — is preserved either way.
    """
    if isinstance(pairs, CsrStepContext):
        _momentum_energy_csr(ps, pairs, av_alpha, use_balsara, omega)
        return
    if isinstance(pairs, StepContext):
        _momentum_energy_cached(ps, pairs, av_alpha, use_balsara, omega)
        return

    a_i, a_j = iad_vectors(ps, pairs, kernel)
    a_bar = 0.5 * (a_i + a_j)

    i, j = pairs.i, pairs.j
    if omega is None:
        pr_i = ps.p[i] / ps.rho[i] ** 2
        pr_j = ps.p[j] / ps.rho[j] ** 2
    else:
        pr_i = ps.p[i] / (omega[i] * ps.rho[i] ** 2)
        pr_j = ps.p[j] / (omega[j] * ps.rho[j] ** 2)

    v_ij = ps.vel[i] - ps.vel[j]
    visc, v_sig = _pair_viscosity(
        ps, i, j, v_ij, pairs.dx, pairs.r, av_alpha, use_balsara
    )

    # Accelerations.
    m_j = ps.mass[j]
    pair_acc = -(m_j[:, None]) * (
        pr_i[:, None] * a_i + pr_j[:, None] * a_j + visc[:, None] * a_bar
    )
    ps.acc = scatter_sum_rows(i, pair_acc, ps.n)

    # Internal energy rate.
    grad_dot_i = np.einsum("ka,ka->k", v_ij, a_i)
    grad_dot_bar = np.einsum("ka,ka->k", v_ij, a_bar)
    du_terms = m_j * (pr_i * grad_dot_i + 0.5 * visc * grad_dot_bar)
    ps.du = scatter_sum(i, du_terms, ps.n)

    # Maximum signal velocity per particle, for the CFL condition.
    v_sig_max = np.full(ps.n, 0.0)
    np.maximum.at(v_sig_max, i, v_sig)
    ps.v_sig_max = np.maximum(v_sig_max, ps.c)
