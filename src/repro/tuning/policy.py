"""Frequency policies for energy-aware execution.

A policy answers one question per loop function: *which GPU compute clock
should this function run at?*  The oracle builder consumes per-function
measurements from a frequency sweep (what the PMT instrumentation
gathers) and picks, per function, the frequency minimizing a figure of
merit — EDP by default, or energy under a time-dilation constraint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import ConfigurationError


class FrequencyPolicy(Protocol):
    """Maps a loop function to the GPU clock it should run at.

    ``None`` means "don't care — keep whatever clock is currently set"
    (used for functions too short to earn a switch).
    """

    def frequency_for(self, function: str) -> float | None:
        """The compute frequency in MHz for ``function`` (or ``None``)."""
        ...


@dataclass(frozen=True)
class StaticPolicy:
    """One frequency for everything (the paper's whole-run down-scaling)."""

    freq_mhz: float

    def frequency_for(self, function: str) -> float | None:
        return self.freq_mhz


@dataclass(frozen=True)
class PerFunctionPolicy:
    """An explicit function -> frequency table.

    Functions absent from the table get ``default_mhz``, or — with
    ``inherit_missing`` — no opinion at all (the running clock is kept),
    which is the right call for sub-second functions whose sweep
    measurements are quantization noise and whose switch cost would
    exceed any possible saving.
    """

    default_mhz: float
    table: dict[str, float] = field(default_factory=dict)
    inherit_missing: bool = False

    def frequency_for(self, function: str) -> float | None:
        if function in self.table:
            return self.table[function]
        return None if self.inherit_missing else self.default_mhz


@dataclass(frozen=True)
class FunctionSweepPoint:
    """One function's measurements at one frequency."""

    function: str
    freq_mhz: float
    seconds: float
    joules: float

    @property
    def edp(self) -> float:
        return self.joules * self.seconds


def build_oracle_policy(
    points: list[FunctionSweepPoint],
    baseline_mhz: float,
    objective: str = "edp",
    max_slowdown: float | None = None,
    tolerance: float = 0.0,
    min_function_seconds: float = 0.0,
) -> PerFunctionPolicy:
    """Pick the best frequency per function from sweep measurements.

    Parameters
    ----------
    points:
        Per-(function, frequency) measurements from the sweep.
    baseline_mhz:
        The nominal frequency (used as the default and as the reference
        for the slowdown constraint).
    objective:
        ``"edp"`` (default) or ``"energy"``.
    max_slowdown:
        If set, frequencies whose function time exceeds
        ``max_slowdown * t(baseline)`` are excluded — the
        performance-constrained energy minimization from the DVFS
        literature.
    tolerance:
        Among frequencies whose objective is within ``(1 + tolerance)`` of
        the best, prefer the *lowest* frequency.  Near-ties across
        functions then collapse onto common frequencies, which minimizes
        clock switches at function boundaries (each switch costs real
        time, see :mod:`repro.tuning.dynamic`) and hedges against sweep
        measurement noise on short functions.
    min_function_seconds:
        Functions whose *baseline* accumulated time is below this are left
        out of the table entirely (the dynamic runner keeps the running
        clock for them): their sweep data is sensor-quantization noise and
        a 10 ms switch would dwarf any saving.
    """
    if objective not in ("edp", "energy"):
        raise ConfigurationError(f"unknown objective {objective!r}")
    if tolerance < 0:
        raise ConfigurationError("tolerance must be >= 0")
    by_function: dict[str, list[FunctionSweepPoint]] = {}
    for point in points:
        by_function.setdefault(point.function, []).append(point)

    table: dict[str, float] = {}
    for function, candidates in by_function.items():
        baseline = next(
            (p for p in candidates if p.freq_mhz == baseline_mhz), None
        )
        if baseline is None:
            raise ConfigurationError(
                f"sweep for {function!r} lacks the baseline frequency "
                f"{baseline_mhz} MHz"
            )
        if baseline.seconds < min_function_seconds:
            continue  # too short to earn a switch; inherit at run time
        feasible = [
            p
            for p in candidates
            if max_slowdown is None or p.seconds <= max_slowdown * baseline.seconds
        ]
        if not feasible:
            feasible = [baseline]
        key = (lambda p: p.edp) if objective == "edp" else (lambda p: p.joules)
        best_value = key(min(feasible, key=key))
        near_best = [
            p for p in feasible if key(p) <= (1.0 + tolerance) * best_value
        ]
        table[function] = min(near_best, key=lambda p: p.freq_mhz).freq_mhz
    return PerFunctionPolicy(
        default_mhz=baseline_mhz,
        table=table,
        inherit_missing=min_function_seconds > 0,
    )
