"""Shock-capturing validation: Sedov-Taylor blast and Noh implosion.

Both are run at deliberately small particle counts, so the assertions
target the physically robust observables (front position, stagnation,
compression well above background) rather than the converged profiles.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sph import Simulation
from repro.sph.initial_conditions import (
    make_noh,
    make_sedov,
    noh_post_shock_density,
    noh_shock_speed,
    sedov_front_radius,
)
from repro.sph.propagator import Propagator


def shock_radius(ps):
    """Radius of the density peak (binned radial profile)."""
    r = np.linalg.norm(ps.pos, axis=1)
    bins = np.linspace(0.0, r.max() + 1e-9, 24)
    idx = np.digitize(r, bins)
    profile = np.array(
        [
            ps.rho[idx == i].mean() if np.any(idx == i) else 0.0
            for i in range(1, len(bins))
        ]
    )
    k = int(np.argmax(profile))
    return 0.5 * (bins[k] + bins[k + 1])


class TestSedovIc:
    def test_energy_budget(self):
        ps, _ = make_sedov(n_side=8, energy=2.5)
        assert ps.internal_energy() == pytest.approx(2.5, rel=1e-3)

    def test_energy_concentrated_at_center(self):
        ps, _ = make_sedov(n_side=8, energy=1.0)
        r = np.linalg.norm(ps.pos, axis=1)
        hot = ps.u > 10 * np.median(ps.u)
        assert np.all(r[hot] < 0.3)

    def test_cold_background(self):
        ps, _ = make_sedov(n_side=8, u_background=1e-6)
        r = np.linalg.norm(ps.pos, axis=1)
        far = r > 0.4
        assert np.all(ps.u[far] == pytest.approx(1e-6))

    def test_front_radius_formula(self):
        # R ~ t^(2/5): doubling t multiplies R by 2^0.4.
        assert sedov_front_radius(2.0) / sedov_front_radius(1.0) == pytest.approx(
            2**0.4
        )
        assert sedov_front_radius(0.0) == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            make_sedov(n_side=8, energy=0.0)
        with pytest.raises(SimulationError):
            make_sedov(n_side=8, u_background=-1.0)
        with pytest.raises(SimulationError):
            sedov_front_radius(-1.0)


class TestSedovEvolution:
    @pytest.fixture(scope="class")
    def blast(self):
        ps, box = make_sedov(n_side=10, energy=1.0, seed=3)
        sim = Simulation(ps, Propagator(box, av_alpha=1.5, courant=0.15))
        sim.run(18)
        return sim

    def test_shock_expands(self, blast):
        assert shock_radius(blast.ps) > 0.1

    def test_front_tracks_self_similar_solution(self, blast):
        measured = shock_radius(blast.ps)
        analytic = sedov_front_radius(blast.time)
        assert measured == pytest.approx(analytic, rel=0.3)

    def test_outward_flow(self, blast):
        ps = blast.ps
        r = np.linalg.norm(ps.pos, axis=1)
        r_hat = ps.pos / np.maximum(r[:, None], 1e-12)
        v_r = np.einsum("ia,ia->i", ps.vel, r_hat)
        moving = np.linalg.norm(ps.vel, axis=1) > 0.01
        assert np.mean(v_r[moving] > 0) > 0.9

    def test_energy_conserved(self, blast):
        totals = blast.history[-1].totals
        # Strong-shock runs with artificial viscosity and a first-order
        # integrator drift a few percent at this resolution.
        assert totals.kinetic + totals.internal == pytest.approx(
            1.0 + 1e-6 * 1.0, rel=0.06
        )

    def test_kinetic_energy_grows_from_zero(self, blast):
        assert blast.history[-1].totals.kinetic > 0.1


class TestNohIc:
    def test_unit_infall(self):
        ps, _ = make_noh(n_side=10)
        speeds = np.linalg.norm(ps.vel, axis=1)
        assert np.allclose(speeds, 1.0, atol=1e-6)
        r_hat = ps.pos / np.linalg.norm(ps.pos, axis=1, keepdims=True)
        v_r = np.einsum("ia,ia->i", ps.vel, r_hat)
        assert np.all(v_r < 0)

    def test_uniform_density_ic(self):
        ps, _ = make_noh(n_side=14, rho0=2.0)
        # total mass / sphere volume = rho0 by construction
        volume = 4.0 / 3.0 * np.pi
        assert ps.total_mass() / volume == pytest.approx(2.0, rel=1e-6)

    def test_analytic_values(self):
        assert noh_post_shock_density() == pytest.approx(64.0)
        assert noh_shock_speed() == pytest.approx(1.0 / 3.0)

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            make_noh(n_side=2)
        with pytest.raises(SimulationError):
            make_noh(n_side=10, sphere_radius=-1.0)


class TestNohEvolution:
    @pytest.fixture(scope="class")
    def implosion(self):
        ps, box = make_noh(n_side=12, seed=4)
        sim = Simulation(ps, Propagator(box, av_alpha=1.5, courant=0.15))
        sim.run(25)
        return sim

    def test_central_compression(self, implosion):
        ps = implosion.ps
        r = np.linalg.norm(ps.pos, axis=1)
        core = r < 0.2
        assert np.any(core)
        # Far from the converged factor 64 at this resolution, but the
        # accretion shock must compress the core well beyond background.
        assert np.median(ps.rho[core]) > 3.0

    def test_core_stagnates(self, implosion):
        ps = implosion.ps
        r = np.linalg.norm(ps.pos, axis=1)
        core = r < 0.15
        outer = r > 0.6
        core_speed = np.median(np.linalg.norm(ps.vel[core], axis=1))
        outer_speed = np.median(np.linalg.norm(ps.vel[outer], axis=1))
        # Outer gas is still infalling fast (pre-shock AV heating slows
        # it below the analytic unit speed), the core has stagnated.
        assert outer_speed > 0.5
        assert core_speed < 0.3 * outer_speed

    def test_shock_heating(self, implosion):
        ps = implosion.ps
        r = np.linalg.norm(ps.pos, axis=1)
        # The converging flow pre-heats the outer gas too (the known SPH
        # pre-shock AV artifact), so the contrast is strong but not the
        # analytic cold/hot jump.
        assert np.median(ps.u[r < 0.2]) > 5 * np.median(ps.u[r > 0.6])
