"""A virtual sysfs: the file-shaped surface of the sensor layer.

The real PMT reads strings out of paths like
``/sys/cray/pm_counters/accel0_power``.  To keep our PMT backends honest
(string parsing and all), sensors register *reader callables* under paths
in a :class:`VirtualSysfs`; reading a path invokes the callable with the
current simulated time and returns the formatted file content.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SensorError
from repro.hardware.clock import VirtualClock


class VirtualSysfs:
    """Path-addressed registry of time-dependent file contents."""

    def __init__(self, clock: VirtualClock) -> None:
        self._clock = clock
        self._files: dict[str, Callable[[float], str]] = {}

    def register(self, path: str, reader: Callable[[float], str]) -> None:
        """Expose ``reader(t) -> str`` as the content of ``path``."""
        if path in self._files:
            raise SensorError(f"sysfs path already registered: {path!r}")
        self._files[path] = reader

    def exists(self, path: str) -> bool:
        """Whether ``path`` is registered."""
        return path in self._files

    def read(self, path: str) -> str:
        """Read the current content of ``path``."""
        try:
            reader = self._files[path]
        except KeyError:
            raise SensorError(f"no such sysfs file: {path!r}") from None
        return reader(self._clock.now)

    def listdir(self, prefix: str) -> list[str]:
        """All registered paths under ``prefix`` (sorted)."""
        if not prefix.endswith("/"):
            prefix += "/"
        return sorted(p for p in self._files if p.startswith(prefix))
