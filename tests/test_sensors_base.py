"""Tests for the core sampling energy counter."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SensorError
from repro.hardware import PowerTrace
from repro.sensors import SampledEnergyCounter


def make_counter(trace=None, **kwargs):
    if trace is None:
        trace = PowerTrace(initial_watts=100.0)
    params = dict(refresh_period_s=0.1, watts_quantum=1.0, energy_quantum=1.0)
    params.update(kwargs)
    return SampledEnergyCounter(trace, **params)


class TestSampledEnergyCounter:
    def test_read_at_zero(self):
        counter = make_counter()
        reading = counter.read(0.0)
        assert reading.timestamp == 0.0
        assert reading.watts == 100.0
        assert reading.joules == 0.0

    def test_constant_power_energy(self):
        counter = make_counter()
        reading = counter.read(10.0)
        assert reading.joules == pytest.approx(100.0 * 10.0)
        assert reading.watts == 100.0

    def test_reading_reflects_last_completed_tick(self):
        counter = make_counter()
        reading = counter.read(0.57)
        assert reading.timestamp == pytest.approx(0.5)
        # Only 5 full ticks integrated.
        assert reading.joules == pytest.approx(100.0 * 0.5)

    def test_tick_boundary_float_fuzz(self):
        counter = make_counter()
        # 0.3 is not exactly representable; 3 * 0.1 may land just below it.
        assert counter.tick_index(0.1 + 0.1 + 0.1) == 3

    def test_quantization_of_watts(self):
        trace = PowerTrace(initial_watts=123.7)
        counter = make_counter(trace)
        assert counter.read(0.0).watts == 124.0

    def test_quantization_of_joules_floor(self):
        trace = PowerTrace(initial_watts=9.4)
        counter = make_counter(trace)
        # 9 W quantized * 1.0 s = 9.0 J per 10 ticks... floor applied on read
        reading = counter.read(0.35)  # 3 ticks of 9 W * 0.1 s = 2.7 -> floor 2
        assert reading.joules == 2.0

    def test_step_change_visible_after_tick(self):
        trace = PowerTrace(initial_watts=50.0)
        trace.set_power(1.0, 250.0)
        counter = make_counter(trace)
        assert counter.read(0.95).watts == 50.0
        assert counter.read(1.0).watts == 250.0

    def test_energy_approximates_ground_truth(self):
        trace = PowerTrace(initial_watts=60.0)
        t = 0.0
        rng = np.random.default_rng(42)
        for _ in range(50):
            t += float(rng.uniform(0.3, 2.0))
            trace.set_power(t, float(rng.uniform(50.0, 400.0)))
        counter = make_counter(trace)
        horizon = t + 1.0
        measured = counter.read(horizon).joules
        truth = counter.true_energy(horizon)
        assert measured == pytest.approx(truth, rel=0.05)

    def test_out_of_order_reads_consistent(self):
        """Two ranks share a card sensor and read it at different times."""
        trace = PowerTrace(initial_watts=100.0)
        counter = make_counter(trace)
        late = counter.read(5.0)
        early = counter.read(2.0)
        again = counter.read(5.0)
        assert early.joules == pytest.approx(200.0)
        assert late.joules == again.joules == pytest.approx(500.0)

    def test_monotone_energy(self):
        trace = PowerTrace(initial_watts=75.0)
        counter = make_counter(trace)
        values = [counter.read(t).joules for t in np.linspace(0, 20, 57)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_wraparound(self):
        counter = make_counter(wrap_joules=500.0)
        # 100 W for 7 s = 700 J -> wraps to 200 J.
        assert counter.read(7.0).joules == pytest.approx(200.0)

    def test_noise_is_deterministic(self):
        trace = PowerTrace(initial_watts=200.0)
        c1 = make_counter(trace, noise_sigma_watts=5.0, seed=7)
        c2 = make_counter(trace, noise_sigma_watts=5.0, seed=7)
        assert c1.read(3.0).joules == c2.read(3.0).joules

    def test_noise_changes_with_seed(self):
        trace = PowerTrace(initial_watts=200.0)
        c1 = make_counter(trace, noise_sigma_watts=5.0, seed=7, watts_quantum=1e-6)
        c2 = make_counter(trace, noise_sigma_watts=5.0, seed=8, watts_quantum=1e-6)
        assert c1.read(3.0).joules != c2.read(3.0).joules

    def test_noise_never_negative_power(self):
        trace = PowerTrace(initial_watts=0.5)
        counter = make_counter(trace, noise_sigma_watts=50.0, watts_quantum=1e-6)
        values = [counter.read(t).watts for t in np.arange(0, 5, 0.1)]
        assert min(values) >= 0.0

    def test_negative_time_rejected(self):
        with pytest.raises(SensorError):
            make_counter().read(-1.0)

    def test_invalid_parameters_rejected(self):
        trace = PowerTrace()
        with pytest.raises(SensorError):
            SampledEnergyCounter(trace, refresh_period_s=0.0)
        with pytest.raises(SensorError):
            SampledEnergyCounter(trace, refresh_period_s=0.1, watts_quantum=0.0)
        with pytest.raises(SensorError):
            SampledEnergyCounter(trace, refresh_period_s=0.1, noise_sigma_watts=-1.0)
        with pytest.raises(SensorError):
            SampledEnergyCounter(trace, refresh_period_s=0.1, wrap_joules=0.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.05, max_value=3.0),
                st.floats(min_value=0.0, max_value=500.0),
            ),
            min_size=1,
            max_size=15,
        ),
        st.floats(min_value=0.5, max_value=30.0),
    )
    @settings(max_examples=40)
    def test_measured_energy_close_to_truth_property(self, segments, horizon):
        """Sampled integration error is bounded by quantization + cadence."""
        trace = PowerTrace(initial_watts=80.0)
        t = 0.0
        for dt, watts in segments:
            t += dt
            trace.set_power(t, watts)
        counter = SampledEnergyCounter(
            trace, refresh_period_s=0.01, watts_quantum=0.001, energy_quantum=1e-6
        )
        measured = counter.read(horizon).joules
        truth = counter.true_energy(horizon)
        # Left-rectangle error per breakpoint <= period * |power jump|.
        bound = 0.01 * (len(segments) + 1) * 500.0 + 0.01 * 500.0 + 1e-3
        assert abs(measured - truth) <= bound
