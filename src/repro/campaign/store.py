"""On-disk content-addressed store of campaign run results.

One completed run is one JSON file at ``<root>/<hh>/<hash>.json`` where
``hash = run_key_hash(key)`` — the address commits to the full run
identity *and* the content of the configurations it referenced, so a
physics- or measurement-relevant config edit reads as a cache miss while
cosmetic execution settings cannot perturb the address at all.

Writes are atomic (temp file + ``os.replace`` in the same directory), so
a campaign killed mid-sweep leaves either complete entries or nothing:
re-running the same spec resumes from the completed subset.  Corrupt or
foreign files are treated as misses, never as errors.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.campaign.keys import CACHE_SCHEMA_VERSION, RunKey, run_key_hash
from repro.instrumentation.records import RunMeasurements
from repro.slurm.job import JobAccounting


@dataclass(frozen=True)
class AccountingSummary:
    """The serializable subset of :class:`~repro.slurm.job.JobAccounting`.

    Everything ``sacct`` reports except the in-memory ``app_result``
    back-reference and the process-global ``job_id`` (normalized to 0 so
    serial and sharded executions serialize identically).
    """

    name: str
    num_nodes: int
    num_ranks: int
    submit_time: float
    start_time: float
    app_start_time: float
    app_end_time: float
    end_time: float
    consumed_energy_joules: float
    per_node_joules: tuple[float, ...]

    @classmethod
    def from_accounting(cls, acct: JobAccounting) -> "AccountingSummary":
        return cls(
            name=acct.name,
            num_nodes=acct.num_nodes,
            num_ranks=acct.num_ranks,
            submit_time=acct.submit_time,
            start_time=acct.start_time,
            app_start_time=acct.app_start_time,
            app_end_time=acct.app_end_time,
            end_time=acct.end_time,
            consumed_energy_joules=acct.consumed_energy_joules,
            per_node_joules=tuple(acct.per_node_joules),
        )

    def to_accounting(self, run: RunMeasurements | None = None) -> JobAccounting:
        """Rebuild a :class:`JobAccounting` view (``job_id`` is always 0)."""
        return JobAccounting(
            job_id=0,
            name=self.name,
            num_nodes=self.num_nodes,
            num_ranks=self.num_ranks,
            submit_time=self.submit_time,
            start_time=self.start_time,
            app_start_time=self.app_start_time,
            app_end_time=self.app_end_time,
            end_time=self.end_time,
            consumed_energy_joules=self.consumed_energy_joules,
            per_node_joules=list(self.per_node_joules),
            app_result=run,
        )


@dataclass(frozen=True)
class CampaignResult:
    """One run's archived outcome: measurements plus accounting."""

    key: RunKey
    run: RunMeasurements
    accounting: AccountingSummary


def _serialize(key: RunKey, result: CampaignResult, digest: str) -> str:
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "hash": digest,
        "key": asdict(key),
        "run": json.loads(result.run.to_json()),
        "accounting": asdict(result.accounting),
    }
    return json.dumps(payload, sort_keys=True, indent=1)


def _deserialize(text: str) -> CampaignResult:
    payload = json.loads(text)
    if payload.get("schema") != CACHE_SCHEMA_VERSION:
        raise ValueError(f"cache schema {payload.get('schema')!r}")
    acct = payload["accounting"]
    acct["per_node_joules"] = tuple(acct["per_node_joules"])
    return CampaignResult(
        key=RunKey(**payload["key"]),
        run=RunMeasurements.from_json(json.dumps(payload["run"])),
        accounting=AccountingSummary(**acct),
    )


class ResultStore:
    """Content-addressed result cache rooted at one directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path_for(self, key: RunKey) -> Path:
        digest = run_key_hash(key)
        return self.root / digest[:2] / f"{digest}.json"

    def contains(self, key: RunKey) -> bool:
        return self.path_for(key).is_file()

    def get(self, key: RunKey) -> CampaignResult | None:
        """The cached result of ``key``, or ``None`` on any kind of miss."""
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            result = _deserialize(text)
        except (ValueError, KeyError, TypeError):
            return None  # corrupt/foreign entry: treat as a miss
        if result.key != key:
            return None  # hash collision or tampered entry
        return result

    def put(self, key: RunKey, result: CampaignResult) -> Path:
        """Atomically archive one completed run."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        digest = path.stem
        tmp = path.with_name(f".{path.name}.tmp{os.getpid()}")
        tmp.write_text(_serialize(key, result, digest))
        os.replace(tmp, path)
        return path

    # -- maintenance --------------------------------------------------------

    def entries(self) -> list[Path]:
        """Every complete cache entry under the root."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("??/*.json"))

    def stats(self) -> dict[str, int]:
        entries = self.entries()
        return {
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
        }

    def clean(self, keys: tuple[RunKey, ...] | None = None) -> int:
        """Remove entries (all of them, or just those of ``keys``).

        Returns the number of entries removed; empty shard directories
        are pruned.
        """
        removed = 0
        targets = (
            self.entries()
            if keys is None
            else [self.path_for(k) for k in keys]
        )
        for path in targets:
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
            parent = path.parent
            if parent != self.root and not any(parent.iterdir()):
                parent.rmdir()
        return removed
