"""Analytic device power model.

The model decomposes device power into four components::

    P(f, u_c, u_m) = P_static
                   + P_clock  * (f / f_nom)
                   + P_comp   * u_c * (f / f_nom) ** alpha
                   + P_mem    * u_m

* ``P_static`` — leakage and always-on logic, frequency independent.
* ``P_clock``  — clock-tree / idle-at-frequency power, linear in f.  This is
  the component that makes GPU frequency down-scaling pay off even while the
  GPU idles during communication phases (the Figure 5 DomainDecompAndSync
  effect).
* ``P_comp``   — dynamic compute power at full utilization and nominal
  frequency, scaling as f^alpha (alpha ~ 2-3 captures voltage scaling along
  the DVFS curve).
* ``P_mem``    — memory-subsystem dynamic power, driven by bandwidth
  utilization and (to first order) independent of *compute* frequency.

The split between compute-frequency-sensitive and -insensitive components is
what produces the paper's core Figure 4/5 shape: memory- and
communication-bound phases keep their duration but shed power when the
compute clock drops, so their EDP improves, while compute-bound kernels
stretch in time and improve little or not at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareError


@dataclass(frozen=True)
class PowerModel:
    """Parameters of the analytic power model (see module docstring)."""

    static_watts: float
    clock_watts: float
    compute_watts: float
    memory_watts: float
    alpha: float = 2.4

    def __post_init__(self) -> None:
        for field in ("static_watts", "clock_watts", "compute_watts", "memory_watts"):
            value = getattr(self, field)
            if value < 0:
                raise HardwareError(f"power model {field} must be >= 0, got {value!r}")
        if self.alpha < 1.0:
            raise HardwareError(f"power model alpha must be >= 1, got {self.alpha!r}")

    @property
    def idle_watts_nominal(self) -> float:
        """Idle power at nominal frequency (u_c = u_m = 0, f = f_nom)."""
        return self.static_watts + self.clock_watts

    @property
    def peak_watts_nominal(self) -> float:
        """Peak power at nominal frequency (u_c = u_m = 1, f = f_nom)."""
        return (
            self.static_watts
            + self.clock_watts
            + self.compute_watts
            + self.memory_watts
        )

    def power(
        self,
        freq_ratio: float,
        compute_utilization: float,
        memory_utilization: float,
    ) -> float:
        """Instantaneous power in watts.

        Parameters
        ----------
        freq_ratio:
            Current frequency divided by nominal frequency (``f / f_nom``).
        compute_utilization:
            Fraction of peak compute issue rate in use, in [0, 1].
        memory_utilization:
            Fraction of peak memory bandwidth in use, in [0, 1].
        """
        if freq_ratio <= 0:
            raise HardwareError(f"freq_ratio must be > 0, got {freq_ratio!r}")
        u_c = _clamp_utilization(compute_utilization, "compute")
        u_m = _clamp_utilization(memory_utilization, "memory")
        return (
            self.static_watts
            + self.clock_watts * freq_ratio
            + self.compute_watts * u_c * freq_ratio**self.alpha
            + self.memory_watts * u_m
        )


def _clamp_utilization(u: float, kind: str) -> float:
    if not 0.0 <= u <= 1.0 + 1e-9:
        raise HardwareError(f"{kind} utilization must be in [0, 1], got {u!r}")
    return min(u, 1.0)
