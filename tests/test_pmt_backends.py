"""Tests for the concrete PMT backends against simulated hardware."""

import pytest

import repro.pmt as pmt
from repro.config import CSCS_A100, LUMI_G
from repro.errors import BackendError
from repro.hardware import Node, VirtualClock
from repro.pmt import PMT, PmtSampler
from repro.sensors import NodeTelemetry


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def lumi(clock):
    node = Node("n0", clock, LUMI_G.node_spec)
    return node, NodeTelemetry(node, LUMI_G, clock)


@pytest.fixture
def cscs(clock):
    node = Node("n0", clock, CSCS_A100.node_spec)
    return node, NodeTelemetry(node, CSCS_A100, clock)


class TestCrayBackend:
    def test_measurement_names(self, lumi):
        node, tel = lumi
        meter = pmt.create("cray", telemetry=tel)
        s = meter.read()
        assert s.names() == (
            "node", "cpu", "memory",
            "accel0", "accel1", "accel2", "accel3",
        )

    def test_requires_cray_platform(self, cscs):
        _, tel = cscs
        with pytest.raises(BackendError):
            pmt.create("cray", telemetry=tel)

    def test_region_energy_tracks_ground_truth(self, clock, lumi):
        node, tel = lumi
        meter = pmt.create("cray", telemetry=tel)
        start = meter.read()
        for gpu in node.gpus:
            gpu.set_load(0.9, 0.6)
        clock.advance(20.0)
        node.all_idle()
        end = meter.read()
        truth = node.energy_between(0.0, 20.0)
        assert PMT.joules(start, end) == pytest.approx(truth, rel=0.02)

    def test_accel_counter_per_card(self, clock, lumi):
        node, tel = lumi
        meter = pmt.create("cray", telemetry=tel)
        start = meter.read()
        node.gpus[0].set_load(1.0, 1.0)  # one GCD of card 0
        clock.advance(10.0)
        node.all_idle()
        end = meter.read()
        card0 = PMT.joules(start, end, "accel0")
        card1 = PMT.joules(start, end, "accel1")
        truth0 = node.cards[0].energy_between(0.0, 10.0)
        assert card0 == pytest.approx(truth0, rel=0.02)
        assert card0 > card1

    def test_average_watts(self, clock, lumi):
        node, tel = lumi
        meter = pmt.create("cray", telemetry=tel)
        start = meter.read()
        clock.advance(10.0)
        end = meter.read()
        assert PMT.watts(start, end) == pytest.approx(node.idle_power(), rel=0.02)


class TestNvmlBackend:
    def test_one_device_per_meter(self, clock, cscs):
        node, tel = cscs
        meter = pmt.create("nvml", telemetry=tel, device_index=2)
        s = meter.read()
        assert s.names() == ("gpu2",)

    def test_bad_device_index(self, cscs):
        _, tel = cscs
        with pytest.raises(BackendError):
            pmt.create("nvml", telemetry=tel, device_index=7)

    def test_requires_nvml_platform(self, lumi):
        _, tel = lumi
        with pytest.raises(BackendError):
            pmt.create("nvml", telemetry=tel)

    def test_region_energy_tracks_card(self, clock, cscs):
        node, tel = cscs
        meter = pmt.create("nvml", telemetry=tel, device_index=0)
        start = meter.read()
        node.gpus[0].set_load(1.0, 0.8)
        clock.advance(30.0)
        node.gpus[0].set_idle()
        end = meter.read()
        truth = node.cards[0].energy_between(0.0, 30.0)
        assert PMT.joules(start, end) == pytest.approx(truth, rel=0.03)


class TestRaplBackend:
    def test_unwrapped_energy_across_wrap(self, clock, cscs):
        node, tel = cscs
        meter = pmt.create("rapl", telemetry=tel)
        node.cpu.set_load(1.0, 1.0)
        power = node.cpu.power_now()
        start = meter.read()
        # Cross the ~4295 J register boundary twice, reading in between
        # (the backend handles one wrap per read interval).
        for _ in range(4):
            clock.advance(4295.0 / power * 0.6)
            meter.read()
        end = meter.read()
        truth = node.cpu.energy_between(start.timestamp, end.timestamp)
        assert PMT.joules(start, end) == pytest.approx(truth, rel=0.01)

    def test_watts_from_deltas(self, clock, cscs):
        node, tel = cscs
        meter = pmt.create("rapl", telemetry=tel)
        meter.read()
        clock.advance(5.0)
        s = meter.read()
        assert s.watts == pytest.approx(node.cpu.power_now(), rel=0.02)

    def test_requires_rapl_platform(self, lumi):
        _, tel = lumi
        with pytest.raises(BackendError):
            pmt.create("rapl", telemetry=tel)


class TestRocmBackend:
    def test_polling_integration(self, clock, lumi):
        node, tel = lumi
        meter = pmt.create("rocm", telemetry=tel, device_index=0)
        start = meter.read()
        node.gpus[0].set_load(1.0, 1.0)
        node.gpus[1].set_load(1.0, 1.0)
        # Poll during the region so trapezoid integration sees the plateau.
        for _ in range(20):
            clock.advance(1.0)
            meter.read()
        node.all_idle()
        end = meter.read()
        truth = node.cards[0].energy_between(start.timestamp, end.timestamp)
        assert PMT.joules(start, end) == pytest.approx(truth, rel=0.05)

    def test_requires_rocm_platform(self, cscs):
        _, tel = cscs
        with pytest.raises(BackendError):
            pmt.create("rocm", telemetry=tel)


class TestSampler:
    def test_samples_at_interval(self, clock, lumi):
        node, tel = lumi
        meter = pmt.create("cray", telemetry=tel)
        sampler = PmtSampler(meter, interval_s=1.0)
        sampler.start()
        for _ in range(10):
            clock.advance(0.5)
        sampler.stop()
        # start sample + 5 boundary samples (t=1..5); stop coincides with
        # the t=5 boundary, so no duplicate final row is emitted.
        times = [row.timestamp for row in sampler.rows]
        assert times[0] == 0.0
        assert times[-1] == 5.0
        assert len(sampler.rows) == 6

    def test_coarse_advance_catches_up(self, clock, lumi):
        node, tel = lumi
        meter = pmt.create("cray", telemetry=tel)
        sampler = PmtSampler(meter, interval_s=1.0)
        sampler.start()
        clock.advance(4.2)  # crosses 4 boundaries in one advance
        sampler.stop()
        assert len(sampler.rows) == 6

    def test_dump_format(self, clock, lumi, tmp_path):
        node, tel = lumi
        meter = pmt.create("cray", telemetry=tel)
        sampler = PmtSampler(meter, interval_s=1.0)
        sampler.start()
        clock.advance(2.0)
        sampler.stop()
        path = tmp_path / "dump.txt"
        sampler.write(path)
        lines = path.read_text().strip().split("\n")
        assert lines[0].startswith("#")
        assert len(lines) == len(sampler.rows) + 1
        t, joules, watts = map(float, lines[-1].split())
        assert t == 2.0
        assert joules > 0

    def test_double_start_rejected(self, lumi):
        node, tel = lumi
        sampler = PmtSampler(pmt.create("cray", telemetry=tel))
        sampler.start()
        with pytest.raises(Exception):
            sampler.start()

    def test_stop_before_start_rejected(self, lumi):
        node, tel = lumi
        sampler = PmtSampler(pmt.create("cray", telemetry=tel))
        with pytest.raises(Exception):
            sampler.stop()
