"""Sedov-Taylor blast wave initial conditions.

The standard shock-capturing test (also one of SPH-EXA's stock test
cases): a point explosion of energy E in a cold uniform gas.  The blast
front follows the self-similar solution ::

    R(t) = xi0 * (E t^2 / rho0)^(1/5)

with xi0 ~= 1.152 for gamma = 5/3 in 3D.  Energy is deposited as internal
energy into the particles inside a small smoothing radius around the
origin (the usual SPH regularization of the delta function).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.sph.initial_conditions.turbulence import make_turbulence

#: Self-similar front coefficient for gamma = 5/3 in 3D.
SEDOV_XI0 = 1.152

def sedov_front_radius(
    t: float, energy: float = 1.0, rho0: float = 1.0
) -> float:
    """Analytic blast-front radius at time ``t``."""
    if t < 0:
        raise SimulationError("time must be >= 0")
    return SEDOV_XI0 * (energy * t**2 / rho0) ** 0.2


def make_sedov(
    n_side: int,
    box_length: float = 1.0,
    rho0: float = 1.0,
    energy: float = 1.0,
    u_background: float = 1e-6,
    n_target: int = 100,
    seed: int = 42,
):
    """Build a cold uniform gas with a central energy spike.

    Returns ``(particles, box)``; the box is periodic (the test must end
    before the front reaches the boundary).
    """
    if energy <= 0:
        raise SimulationError("blast energy must be positive")
    if u_background <= 0:
        raise SimulationError("background energy must be positive")
    ps, box = make_turbulence(
        n_side=n_side,
        box_length=box_length,
        rho0=rho0,
        sound_speed=1.0,  # overwritten below
        n_target=n_target,
        seed=seed,
    )
    ps.u[:] = u_background

    # Deposit E into the particles within ~2 smoothing lengths of the
    # origin, kernel-weighted (the standard smoothed point explosion).
    r = np.linalg.norm(ps.pos, axis=1)
    # Deposit radius: a couple of smoothing lengths, but never a sizable
    # fraction of the box (low-resolution runs have huge h).
    r_dep = min(2.0 * float(np.median(ps.h)), 0.2 * box_length)
    inside = r < r_dep
    if not np.any(inside):
        inside = r <= np.partition(r, 7)[7]  # at least the central 8
    weights = np.zeros(ps.n)
    weights[inside] = (1.0 - (r[inside] / max(r[inside].max(), 1e-12)) ** 2) + 0.1
    weights /= weights.sum()
    ps.u = ps.u + energy * weights / ps.mass
    return ps, box
