"""Human-readable measurement reports.

Renders the gathered measurements the way a user would consume them after
a run: a per-device summary (the Figure 2 view), a per-function table
(the Figure 3 view), and the telemetry-health QC table of the resilient
measurement layer.
"""

from __future__ import annotations

from repro.instrumentation.records import RunMeasurements
from repro.units import format_duration, joules_to_megajoules


def artifact_report(artifacts: dict[str, object]) -> str:
    """Link exported observability artifacts into the run report.

    ``artifacts`` maps a kind (``chrome-trace``, ``prometheus``, ``csv``,
    ``jsonl``) to the written path — the dict
    :func:`repro.timeseries.export.export_bundle` returns.  Kinds are
    listed sorted so the report is deterministic.
    """
    if not artifacts:
        return "Exported artifacts: none"
    lines = ["Exported artifacts:"]
    width = max(len(kind) for kind in artifacts)
    for kind in sorted(artifacts):
        lines.append(f"  {kind:>{width}}  {artifacts[kind]}")
    return "\n".join(lines)


def telemetry_qc_line(run: RunMeasurements) -> str:
    """One-line data-quality verdict for a run's measurements."""
    if not run.telemetry_health:
        return "Telemetry QC: not recorded (non-resilient run)"
    degraded = [
        f"node {h.node_index}: {', '.join(h.degraded_children)}"
        for h in run.telemetry_health
        if h.status != "ok"
    ]
    if not degraded:
        return "Telemetry QC: ok (no sensor substitutions)"
    return "Telemetry QC: DEGRADED (" + "; ".join(degraded) + ")"


def campaign_health_summary(
    runs: dict[str, RunMeasurements], corrupt: int = 0
) -> str:
    """Aggregate telemetry health across a campaign's runs (shards).

    ``runs`` maps a per-run label (the run key's compact form) to its
    measurements.  The verdict is one line when every shard measured
    cleanly; degraded shards are each listed with the nodes and meters
    that served substituted values, so a sweep summary never hides a
    sensor failure inside an aggregate.  ``corrupt`` counts cache
    entries that failed to deserialize during the sweep (quarantined and
    re-executed) — nonzero means the shared result store is rotting and
    gets its own line so it is never silently absorbed as extra misses.
    """
    suffix = (
        f"\nCache health: {corrupt} corrupt entr"
        f"{'y' if corrupt == 1 else 'ies'} quarantined and re-executed"
        if corrupt
        else ""
    )
    if not runs:
        return "Telemetry QC: no runs" + suffix
    unknown = sum(1 for run in runs.values() if not run.telemetry_health)
    degraded = {
        label: run
        for label, run in runs.items()
        if run.telemetry_health and run.telemetry_degraded
    }
    mitigations = 0
    for run in runs.values():
        for h in run.telemetry_health:
            mitigations += (
                h.retries + h.gaps_interpolated + h.glitches_rejected
                + h.stuck_detections
            )
    if not degraded:
        verdict = f"Telemetry QC: ok across {len(runs)} runs"
        if mitigations:
            verdict += f" ({mitigations} transient mitigations)"
        if unknown:
            verdict += f"; {unknown} runs without health records"
        return verdict + suffix
    lines = [
        f"Telemetry QC: {len(degraded)} of {len(runs)} runs DEGRADED "
        f"({mitigations} mitigations total)"
    ]
    for label, run in degraded.items():
        nodes = "; ".join(
            f"node {h.node_index}: {', '.join(h.degraded_children)}"
            for h in run.telemetry_health
            if h.status != "ok"
        )
        lines.append(f"  {label}: {nodes}")
    return "\n".join(lines) + suffix


def campaign_audit_summary(stats) -> str:
    """The energy-audit section of a campaign summary.

    ``stats`` is the :class:`~repro.campaign.executor.CampaignStats` of
    an audited :func:`~repro.campaign.executor.execute` call.  One line
    when every result's books balance; each failing run key otherwise
    gets its findings listed, so a sweep summary never hides an
    accounting imbalance inside an aggregate.
    """
    if stats.audit_reports is None:
        return "Energy audit: not run (pass --audit)"
    if not stats.audit_findings:
        return (
            f"Energy audit: ok — {stats.audit_checks} checks over "
            f"{len(stats.audit_reports)} runs, 0 findings"
        )
    lines = [
        f"Energy audit: {stats.audit_findings} findings over "
        f"{len(stats.audit_reports)} runs ({stats.audit_checks} checks)"
    ]
    for key, report in stats.audit_reports.items():
        for finding in report.findings:
            lines.append(f"  {key.label}: {finding.render()}")
    return "\n".join(lines)


def service_qc_summary(
    snapshots: list[dict],
    watch_frames_sent: dict[str, int] | None = None,
    watch_frames_dropped: dict[str, int] | None = None,
) -> str:
    """The telemetry-service ingest QC verdict.

    ``snapshots`` are tenant accounting snapshots (what
    :meth:`~repro.service.tenants.Tenant.snapshot` and the service's
    ``/tenants`` endpoint return).  Mirrors the campaign QC idiom: one
    line when every sample offered was ingested, per-tenant detail when
    anything was shed or rejected — drops are *accounted*, never hidden
    inside an aggregate.
    """
    if not snapshots:
        return "Service QC: no tenants"
    offered = sum(s["samples_offered"] for s in snapshots)
    ingested = sum(s["samples_ingested"] for s in snapshots)
    shed = sum(s["samples_shed"] for s in snapshots)
    rejected = sum(s["samples_rejected"] for s in snapshots)
    pending = sum(s["pending_samples"] for s in snapshots)
    balanced = offered == ingested + shed + rejected + pending
    over_cap = [
        s["tenant"] for s in snapshots
        if s["store_bytes"] > s["memory_cap_bytes"]
    ]
    dropped_frames = sum((watch_frames_dropped or {}).values())
    lines = []
    if shed == 0 and rejected == 0 and balanced and not over_cap:
        verdict = (
            f"Service QC: ok — {ingested} of {offered} samples ingested "
            f"across {len(snapshots)} tenants, 0 shed, 0 rejected"
        )
        if pending:
            verdict += f" ({pending} still queued)"
        lines.append(verdict)
    else:
        lines.append(
            f"Service QC: DEGRADED — offered {offered}, ingested {ingested}, "
            f"shed {shed}, rejected {rejected}, pending {pending}"
        )
        for s in snapshots:
            if s["samples_shed"] or s["samples_rejected"]:
                lines.append(
                    f"  {s['tenant']}: shed {s['samples_shed']}, "
                    f"rejected {s['samples_rejected']} "
                    f"of {s['samples_offered']} offered"
                )
        if not balanced:
            lines.append(
                "  accounting identity BROKEN: offered != "
                "ingested + shed + rejected + pending"
            )
        for name in over_cap:
            lines.append(f"  {name}: store exceeds its memory cap")
    if dropped_frames:
        lines.append(
            f"  live watch: {dropped_frames} frames dropped to slow "
            f"subscribers ({sum((watch_frames_sent or {}).values())} sent)"
        )
    return "\n".join(lines)


def governor_report(report) -> str:
    """The governor section of a run report.

    ``report`` is the :class:`~repro.tuning.governor.GovernorReport` an
    :class:`~repro.experiments.runner.ExperimentResult` carries when the
    run was governed.  Typed loosely to keep instrumentation free of a
    tuning-package import.
    """
    lines = [
        f"Governor: {report.policy} "
        f"({report.decisions} decisions, {report.switches} switches, "
        f"{report.switch_joules:.1f} J in dvfs-switch)"
    ]
    if report.power_cap_watts is not None:
        verdict = (
            "compliant"
            if report.cap_violation_ticks == 0
            and report.max_rolling_watts <= report.power_cap_watts
            else f"VIOLATED on {report.cap_violation_ticks} ticks"
        )
        lines.append(
            f"  power cap: {report.power_cap_watts:.0f} W, rolling max "
            f"{report.max_rolling_watts:.1f} W — {verdict}"
        )
    if report.clock_table:
        width = max(len(f) for f in report.clock_table)
        lines.append("  settled clocks:")
        for function in sorted(report.clock_table):
            lines.append(
                f"    {function:>{width}}  "
                f"{report.clock_table[function]:.0f} MHz"
            )
    else:
        lines.append("  settled clocks: none (no function ran past dwell)")
    return "\n".join(lines)


def device_report(run: RunMeasurements) -> str:
    """The device-level energy breakdown of one run."""
    # Imported lazily: the analysis package consumes instrumentation
    # records, so a top-level import here would be circular.
    from repro.analysis.breakdown import device_breakdown

    breakdown = device_breakdown(run)
    lines = [
        f"Run: {run.test_case} on {run.system_name} "
        f"({run.num_ranks} ranks / {run.num_nodes} nodes, "
        f"{run.gpu_freq_mhz:.0f} MHz)",
        f"Instrumented window: {format_duration(run.app_seconds)}",
        f"Total energy: {joules_to_megajoules(breakdown.total_joules):.2f} MJ",
        "",
        f"{'Device':>8} {'Energy [MJ]':>12} {'Share':>8}",
    ]
    for device, joules in breakdown.joules.items():
        share = breakdown.shares[device]
        lines.append(
            f"{device:>8} {joules_to_megajoules(joules):>12.3f} {share:>7.1%}"
        )
    if run.telemetry_health:
        lines += ["", telemetry_qc_line(run)]
    return "\n".join(lines)


def health_report(run: RunMeasurements) -> str:
    """The per-node telemetry-health table of the resilient layer."""
    if not run.telemetry_health:
        return telemetry_qc_line(run)
    lines = [
        "Telemetry health (mitigations of the resilient measurement layer):",
        f"{'Node':>5} {'Reads':>7} {'Retry':>6} {'Gaps':>5} {'Gap[s]':>7} "
        f"{'Glitch':>7} {'Stuck':>6} {'Suspect':>8} {'Status':>9}  Degraded",
    ]
    for h in run.telemetry_health:
        degraded = ", ".join(h.degraded_children) if h.degraded_children else "-"
        lines.append(
            f"{h.node_index:>5} {h.reads:>7} {h.retries:>6} "
            f"{h.gaps_interpolated:>5} {h.gap_seconds:>7.1f} "
            f"{h.glitches_rejected:>7} {h.stuck_detections:>6} "
            f"{h.suspect_intervals:>8} {h.status:>9}  {degraded}"
        )
    lines.append(telemetry_qc_line(run))
    return "\n".join(lines)


def function_report(run: RunMeasurements, device: str = "gpu") -> str:
    """The per-function energy breakdown for one device."""
    from repro.analysis.breakdown import function_breakdown

    rows = function_breakdown(run, device)
    total = sum(r.joules for r in rows)
    lines = [
        f"Function-level {device.upper()} energy, {run.test_case} on "
        f"{run.system_name}:",
        f"{'Function':>24} {'Energy [MJ]':>12} {'Share':>8} {'Time [s]':>10}",
    ]
    for row in rows:
        share = row.joules / total if total else 0.0
        lines.append(
            f"{row.function:>24} {joules_to_megajoules(row.joules):>12.3f} "
            f"{share:>7.1%} {row.seconds:>10.1f}"
        )
    return "\n".join(lines)
