"""Dynamic voltage and frequency scaling (DVFS) domains.

A :class:`FrequencyDomain` tracks the current frequency of a device and the
discrete set of user-settable frequencies.  Section 3.2 of the paper notes
that production systems (LUMI-G, CSCS-A100) do *not* allow user frequency
control, while miniHPC does — the domain therefore carries a
``user_controllable`` flag that the experiment runner honours.
"""

from __future__ import annotations

from repro.errors import DvfsError


def snap_to_supported(
    supported_hz: tuple[float, ...], target_hz: float
) -> float:
    """The supported frequency closest to ``target_hz``.

    An equidistant target (exactly between two supported steps) snaps to
    the *lower* frequency — the conservative choice for both energy and
    thermal headroom — regardless of how ``supported_hz`` is ordered.
    """
    if not supported_hz:
        raise DvfsError("cannot snap to an empty supported set")
    return min(supported_hz, key=lambda f: (abs(f - target_hz), f))


class FrequencyDomain:
    """The frequency state of one device.

    Parameters
    ----------
    supported_hz:
        Discrete settable frequencies (Hz), any order; stored sorted.
    nominal_hz:
        Default frequency; must be one of ``supported_hz``.
    user_controllable:
        Whether an unprivileged user may change the frequency (miniHPC
        yes, LUMI-G / CSCS-A100 no).
    """

    def __init__(
        self,
        supported_hz: tuple[float, ...],
        nominal_hz: float,
        user_controllable: bool = True,
    ) -> None:
        if not supported_hz:
            raise DvfsError("a frequency domain needs at least one frequency")
        self._supported = tuple(sorted(set(float(f) for f in supported_hz)))
        if float(nominal_hz) not in self._supported:
            raise DvfsError(
                f"nominal frequency {nominal_hz!r} not in supported set"
            )
        self._nominal = float(nominal_hz)
        self._current = self._nominal
        self.user_controllable = bool(user_controllable)

    @property
    def supported_hz(self) -> tuple[float, ...]:
        """Sorted tuple of settable frequencies in Hz."""
        return self._supported

    @property
    def nominal_hz(self) -> float:
        """The nominal (default / boost-baseline) frequency in Hz."""
        return self._nominal

    @property
    def current_hz(self) -> float:
        """The currently applied frequency in Hz."""
        return self._current

    @property
    def ratio(self) -> float:
        """``current / nominal`` — the factor fed to the power model."""
        return self._current / self._nominal

    def nearest_supported(self, freq_hz: float) -> float:
        """The supported frequency closest to ``freq_hz`` (ties snap low)."""
        return snap_to_supported(self._supported, float(freq_hz))

    def set_frequency(self, freq_hz: float, privileged: bool = False) -> None:
        """Set the frequency.

        Raises
        ------
        DvfsError
            If the frequency is unsupported, or if the domain is not user
            controllable and ``privileged`` is False.
        """
        freq_hz = float(freq_hz)
        if freq_hz not in self._supported:
            raise DvfsError(
                f"unsupported frequency {freq_hz!r} Hz; supported: {self._supported}"
            )
        if not self.user_controllable and not privileged:
            raise DvfsError(
                "frequency domain is not user controllable on this system"
            )
        self._current = freq_hz

    def reset(self) -> None:
        """Return to the nominal frequency (always allowed)."""
        self._current = self._nominal

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"FrequencyDomain(current={self._current / 1e6:.0f} MHz, "
            f"nominal={self._nominal / 1e6:.0f} MHz, "
            f"user_controllable={self.user_controllable})"
        )
