"""Tests for the dynamic per-function DVFS extension (paper future work)."""

import pytest

from repro.config import MINIHPC, SUBSONIC_TURBULENCE
from repro.errors import ConfigurationError, SimulationError
from repro.tuning import (
    SWITCH_FUNCTION,
    DynamicDvfsApplication,
    PerFunctionPolicy,
    StaticPolicy,
    build_oracle_policy,
    tune_per_function,
)
from repro.tuning.optimizer import TuningReport, run_dynamic
from repro.tuning.policy import FunctionSweepPoint

FREQS = (1410.0, 1230.0, 1005.0)
SIDE = 450.0


def sweep_point(fn, freq, seconds, joules):
    return FunctionSweepPoint(
        function=fn, freq_mhz=freq, seconds=seconds, joules=joules
    )


class TestPolicies:
    def test_static_policy(self):
        policy = StaticPolicy(1200.0)
        assert policy.frequency_for("Anything") == 1200.0

    def test_per_function_with_default(self):
        policy = PerFunctionPolicy(default_mhz=1410.0, table={"A": 1005.0})
        assert policy.frequency_for("A") == 1005.0
        assert policy.frequency_for("B") == 1410.0

    def test_inherit_missing(self):
        policy = PerFunctionPolicy(
            default_mhz=1410.0, table={"A": 1005.0}, inherit_missing=True
        )
        assert policy.frequency_for("B") is None


class TestOracleBuilder:
    def make_points(self):
        return [
            # Compute-bound: stretches at low frequency, EDP worse.
            sweep_point("ME", 1410.0, 10.0, 2000.0),
            sweep_point("ME", 1005.0, 14.0, 1800.0),
            # Memory-bound: same time, less energy at low frequency.
            sweep_point("Density", 1410.0, 5.0, 1000.0),
            sweep_point("Density", 1005.0, 5.0, 700.0),
        ]

    def test_edp_objective(self):
        policy = build_oracle_policy(self.make_points(), 1410.0)
        assert policy.frequency_for("ME") == 1410.0
        assert policy.frequency_for("Density") == 1005.0

    def test_energy_objective_unconstrained(self):
        policy = build_oracle_policy(
            self.make_points(), 1410.0, objective="energy"
        )
        # Pure energy minimization down-clocks even the compute-bound kernel.
        assert policy.frequency_for("ME") == 1005.0

    def test_energy_objective_with_slowdown_constraint(self):
        policy = build_oracle_policy(
            self.make_points(), 1410.0, objective="energy", max_slowdown=1.1
        )
        # 14 s > 1.1 * 10 s: the low frequency is infeasible for ME.
        assert policy.frequency_for("ME") == 1410.0
        assert policy.frequency_for("Density") == 1005.0

    def test_tolerance_prefers_lower_frequency(self):
        points = [
            sweep_point("F", 1410.0, 10.0, 1000.0),  # EDP 10000 (best)
            sweep_point("F", 1005.0, 10.0, 1020.0),  # EDP 10200 (within 3%)
        ]
        assert build_oracle_policy(points, 1410.0).frequency_for("F") == 1410.0
        assert (
            build_oracle_policy(points, 1410.0, tolerance=0.03).frequency_for("F")
            == 1005.0
        )

    def test_min_function_seconds_exempts_short_functions(self):
        points = self.make_points() + [
            sweep_point("Tiny", 1410.0, 0.01, 1.0),
            sweep_point("Tiny", 1005.0, 0.01, 0.1),
        ]
        policy = build_oracle_policy(points, 1410.0, min_function_seconds=1.0)
        assert policy.inherit_missing
        assert policy.frequency_for("Tiny") is None
        assert policy.frequency_for("Density") == 1005.0

    def test_missing_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            build_oracle_policy([sweep_point("F", 1005.0, 1.0, 1.0)], 1410.0)

    def test_unknown_objective_rejected(self):
        with pytest.raises(ConfigurationError):
            build_oracle_policy(self.make_points(), 1410.0, objective="power")

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            build_oracle_policy(self.make_points(), 1410.0, tolerance=-0.1)


class TestDynamicApplication:
    def test_switch_counting_and_snapping(self):
        policy = PerFunctionPolicy(
            default_mhz=1410.0,
            # 1200 is not a supported A100 step; must snap to 1185/1230.
            table={"MomentumEnergy": 1200.0},
        )
        run, switches = run_dynamic(
            MINIHPC,
            SUBSONIC_TURBULENCE,
            num_cards=2,
            policy=policy,
            num_steps=2,
            particles_per_rank=1e7,
        )
        # ME switches down, the next function switches back: 2 per step.
        assert switches == 4
        assert run.num_ranks == 2

    def test_static_policy_never_switches_after_start(self):
        policy = StaticPolicy(1410.0)
        _, switches = run_dynamic(
            MINIHPC,
            SUBSONIC_TURBULENCE,
            num_cards=2,
            policy=policy,
            num_steps=2,
            particles_per_rank=1e7,
        )
        assert switches == 0

    def test_skewed_per_rank_clocks_are_healed(self):
        """Regression: the policy check must look at *every* rank's clock.

        Deciding from rank 0 alone would return early here — rank 0 is
        already at the target — and leave the skewed rank behind forever.
        """
        from repro.hardware import Cluster, VirtualClock
        from repro.instrumentation import EnergyProfiler
        from repro.mpi import CommCostModel, RankPlacement, SpmdEngine
        from repro.sensors import NodeTelemetry
        from repro.sph.perfmodel import SphPerformanceModel
        from repro.units import mhz

        system = MINIHPC
        clock = VirtualClock()
        cluster = Cluster(
            "c", clock, system.node_spec, 1, system.network
        )
        placement = RankPlacement(cluster)
        engine = SpmdEngine(placement)
        telemetries = [
            NodeTelemetry(node, system, clock, seed=i)
            for i, node in enumerate(cluster.nodes)
        ]
        profiler = EnergyProfiler(placement, telemetries, system)
        app = DynamicDvfsApplication(
            engine=engine,
            profiler=profiler,
            perfmodel=SphPerformanceModel(
                CommCostModel(system.network, placement), 1e6
            ),
            functions=("A",),
            num_steps=1,
            test_case_name="t",
            policy=StaticPolicy(1410.0),
        )
        assert placement.size >= 2
        # Skew: rank 0 at the target already, rank 1 behind.
        placement.gpu_of(0).set_frequency(mhz(1410.0))
        placement.gpu_of(1).set_frequency(mhz(1005.0))
        profiler.start_app()
        app._apply_policy("A")
        clocks = {
            placement.gpu_of(rank).frequency.current_hz
            for rank in range(placement.size)
        }
        assert clocks == {mhz(1410.0)}
        assert app.switch_count == 1

    def test_switch_energy_isolated_from_functions(self):
        """Regression: relock idle energy lands in ``dvfs-switch``, not in
        the surrounding functions' windows.

        The GPU counter samples power at 50 ms ticks (left rectangles), so
        at most one boundary tick of smear per region edge is genuine
        sensor behaviour — it moves between adjacent windows whenever the
        timeline shifts, switch latency or not.  The pre-fix bug folded the
        *entire* idle window into the next function's measurement, which
        grows without bound in the latency; the fix caps any per-function
        shift at the smear bound while the isolated ``dvfs-switch`` term
        carries the idle energy.  A latency that is an exact multiple of
        the sensor tick keeps every later region's tick phase identical to
        the zero-latency run, so the smear bound is tight here.
        """
        from repro.analysis.aggregate import function_totals
        from repro.sensors.nvml import NVML_PERIOD_S

        policy = PerFunctionPolicy(
            default_mhz=1410.0, table={"MomentumEnergy": 1005.0}
        )
        num_steps = 2
        latency = 10 * NVML_PERIOD_S  # tick-aligned, dwarfs boundary smear

        def run(latency):
            from repro.hardware import Cluster, VirtualClock
            from repro.instrumentation import EnergyProfiler
            from repro.mpi import CommCostModel, RankPlacement, SpmdEngine
            from repro.sensors import NodeTelemetry
            from repro.sph.perfmodel import SphPerformanceModel
            from repro.sph.propagator import TURBULENCE_FUNCTIONS

            system = MINIHPC
            clock = VirtualClock()
            cluster = Cluster("c", clock, system.node_spec, 1, system.network)
            placement = RankPlacement(cluster)
            engine = SpmdEngine(placement)
            telemetries = [
                NodeTelemetry(node, system, clock, seed=i)
                for i, node in enumerate(cluster.nodes)
            ]
            profiler = EnergyProfiler(placement, telemetries, system)
            app = DynamicDvfsApplication(
                engine=engine,
                profiler=profiler,
                perfmodel=SphPerformanceModel(
                    CommCostModel(system.network, placement), 1e7
                ),
                functions=TURBULENCE_FUNCTIONS,
                num_steps=num_steps,
                test_case_name=SUBSONIC_TURBULENCE.name,
                policy=policy,
                switch_latency_s=latency,
            )
            return app.run(), app.switch_count

        with_latency, switches = run(latency)
        without_latency, _ = run(0.0)
        assert switches > 0
        hot = function_totals(with_latency, "gpu")
        cold = function_totals(without_latency, "gpu")
        switch_term = hot.pop(SWITCH_FUNCTION)
        assert SWITCH_FUNCTION not in cold

        # Timing isolation is exact: the relock stall never inflates a
        # function's measured seconds, and the switch span accounts for
        # every idle second on every rank.
        hot_seconds = {}
        for rec in with_latency.records:
            hot_seconds[rec.function] = (
                hot_seconds.get(rec.function, 0.0) + rec.seconds
            )
        switch_seconds = hot_seconds.pop(SWITCH_FUNCTION)
        assert switch_seconds == pytest.approx(
            switches * latency * with_latency.num_ranks, rel=1e-12
        )
        cold_seconds = {}
        for rec in without_latency.records:
            cold_seconds[rec.function] = (
                cold_seconds.get(rec.function, 0.0) + rec.seconds
            )
        for fn, seconds in hot_seconds.items():
            assert seconds == pytest.approx(cold_seconds[fn], rel=1e-12)

        # Energy isolation up to sensor-boundary smear: each function call
        # bordering a switch can exchange at most one 50 ms tick of energy
        # with its neighbour per edge (two edges x num_steps calls, at
        # card peak power in the worst case).
        card_peak = MINIHPC.node_spec.card_peak_watts
        smear = 2 * num_steps * NVML_PERIOD_S * card_peak
        assert switch_term > 2 * smear  # the isolated term is unmistakable
        for fn, joules in hot.items():
            assert joules == pytest.approx(cold[fn], abs=smear)

    def test_negative_latency_rejected(self):
        with pytest.raises(SimulationError):
            # Engine internals irrelevant; the constructor validates first.
            DynamicDvfsApplication(
                engine=None,  # type: ignore[arg-type]
                profiler=None,  # type: ignore[arg-type]
                perfmodel=None,  # type: ignore[arg-type]
                functions=("A",),
                num_steps=1,
                test_case_name="t",
                policy=StaticPolicy(1410.0),
                switch_latency_s=-1.0,
            )


class TestReportGuards:
    def make_report(self, baseline_edp=100.0, best_static_edp=90.0):
        return TuningReport(
            policy=PerFunctionPolicy(default_mhz=1410.0, table={}),
            baseline_mhz=1410.0,
            baseline_edp=baseline_edp,
            baseline_seconds=10.0,
            best_static_mhz=1005.0,
            best_static_edp=best_static_edp,
            dynamic_edp=80.0,
            dynamic_seconds=11.0,
            dynamic_run=None,
            switch_count=0,
        )

    def test_ratios_on_healthy_denominators(self):
        report = self.make_report()
        assert report.edp_vs_baseline == pytest.approx(0.8)
        assert report.edp_vs_best_static == pytest.approx(80.0 / 90.0)

    def test_zero_baseline_edp_raises_typed_error(self):
        report = self.make_report(baseline_edp=0.0)
        with pytest.raises(ConfigurationError):
            report.edp_vs_baseline

    def test_zero_best_static_edp_raises_typed_error(self):
        report = self.make_report(best_static_edp=0.0)
        with pytest.raises(ConfigurationError):
            report.edp_vs_best_static


class TestEndToEndTuning:
    @pytest.fixture(scope="class")
    def report(self):
        return tune_per_function(
            MINIHPC,
            SUBSONIC_TURBULENCE,
            num_cards=2,
            freqs_mhz=FREQS,
            num_steps=10,
            particles_per_rank=SIDE**3,
        )

    def test_dynamic_beats_baseline_edp(self, report):
        assert report.edp_vs_baseline < 0.95

    def test_dynamic_competitive_with_best_static(self, report):
        assert report.edp_vs_best_static < 1.05

    def test_policy_downclocks_memory_bound_functions(self, report):
        assert report.policy.table["Density"] == 1005.0
        assert report.policy.table["DomainDecompAndSync"] == 1005.0

    def test_few_switches(self, report):
        # Near-ties collapse + short-function exemption keep switching rare.
        assert report.switch_count <= 3 * report.dynamic_run.num_steps

    def test_constrained_tuning_is_pareto(self):
        """Energy savings under a tight slowdown budget: a point no static
        frequency reaches (static low-clock violates the budget, static
        nominal saves nothing)."""
        report = tune_per_function(
            MINIHPC,
            SUBSONIC_TURBULENCE,
            num_cards=2,
            freqs_mhz=FREQS,
            num_steps=10,
            particles_per_rank=SIDE**3,
            objective="energy",
            max_slowdown=1.03,
        )
        dilation = report.dynamic_seconds / report.baseline_seconds
        assert dilation < 1.04  # honours the budget (plus switch overhead)
        assert report.edp_vs_baseline < 0.97  # and still saves energy
        # Compute-bound kernels stay fast, memory-bound ones down-clock.
        assert report.policy.table["MomentumEnergy"] == 1410.0
        assert report.policy.table["Density"] == 1005.0
