"""Audit tolerances: how tightly each invariant is allowed to close.

The invariants are not all exact.  Quantized counters floor energy per
read, regions tile the app window only up to per-rank straggler gaps,
and the PMT-vs-Slurm comparison has an *expected* structural gap (the
launch/init/teardown energy Slurm accounts but the instrumented window
does not see).  The tolerances below encode exactly how much slack each
identity legitimately has — anything beyond is an accounting bug, not
noise.  Per-system PMT/Slurm ratio bounds were calibrated empirically on
the Figure 1 validation path of the three paper systems (see DESIGN.md,
"Audited invariants").
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class AuditTolerances:
    """All slack the auditor grants, in one place."""

    #: Absolute slack (joules) for any single counter delta: quantized
    #: accumulators may floor up to one quantum per boundary read.
    counter_slack_joules: float = 1.0

    #: Per-function attributed sums may fall short of the whole-window
    #: total by at most this fraction: regions tile the app window except
    #: the per-rank straggler gaps between a rank's own region end and
    #: the phase barrier (load-imbalance time no region measures).
    function_partition_max_deficit: float = 0.08

    #: ... and may *exceed* the window total only by quantization fuzz —
    #: a rank's region energies telescope inside the window, so any real
    #: excess means double counting.
    function_partition_max_excess: float = 1e-3

    #: Per-device energies (CPU + GPU + memory) may exceed the node
    #: sensor total by at most this fraction; the node counter includes
    #: everything the device counters see, so "Other" must stay >= 0 up
    #: to independent sensor noise and quantization.
    device_partition_max_excess: float = 0.02

    #: Tiered-store energy queries vs the raw tick stream: the store's
    #: cumulative-joule knots make full-range queries exact; relative
    #: slack covers float summation order only.
    timeseries_conservation_rel: float = 1e-6

    #: PMT total may exceed Slurm's ConsumedEnergy only by float fuzz
    #: (the instrumented window is a sub-interval of what Slurm
    #: integrates).
    pmt_slurm_ratio_max: float = 1.0 + 1e-9

    #: Lower bound on PMT/Slurm, applied only when the instrumented
    #: window covers at least ``pmt_slurm_min_window_fraction`` of the
    #: accounted wall time — short smoke runs are legitimately dominated
    #: by launch/teardown energy and carry no paper-scale floor.
    pmt_slurm_ratio_min: float = 0.5
    pmt_slurm_min_window_fraction: float = 0.5


#: Paper-system overrides (Figure 1): the PMT/Slurm gap is the
#: out-of-window energy, larger on systems with slower setup and higher
#: idle draw (LUMI-G), small on the NVML systems.  Floors hold for runs
#: whose instrumented window dominates the job (the fig1 configurations);
#: they sit deliberately a few percent below the ratios measured on the
#: fig1 path at paper step counts: LUMI-G 0.84, CSCS-A100 0.91,
#: miniHPC 0.90 (stable across card counts to within 0.003).
PER_SYSTEM: dict[str, AuditTolerances] = {
    "LUMI-G": AuditTolerances(pmt_slurm_ratio_min=0.80),
    "CSCS-A100": AuditTolerances(pmt_slurm_ratio_min=0.85),
    "miniHPC": AuditTolerances(pmt_slurm_ratio_min=0.85),
}


def tolerances_for(system_name: str | None) -> AuditTolerances:
    """The tolerance set of one system (defaults for unknown systems)."""
    if system_name is None:
        return AuditTolerances()
    return PER_SYSTEM.get(system_name, AuditTolerances())


def strictened(base: AuditTolerances, **overrides: float) -> AuditTolerances:
    """A copy of ``base`` with individual tolerances replaced (tests)."""
    return replace(base, **overrides)
