"""The per-step pair pipeline cache (Verlet skin list + kernel memoization).

Three reuse layers sit between the neighbor search and the physics
kernels, mirroring how SPH-EXA earns its throughput:

* **Half-pair lists** (:class:`~repro.sph.neighbors.HalfPairList`) store
  each interacting pair once; consumers accumulate both gather targets
  with the symmetric scatter-adds below.  Pairwise antisymmetry — and so
  momentum conservation to round-off — is preserved exactly, because the
  ``i`` and ``j`` contributions of one pair are computed from the same
  per-pair term.
* **Verlet skin caching** (:class:`VerletList`): the neighbor search runs
  with an inflated cutoff ``2 max(h_i, h_j) + skin`` and the candidate
  list is reused until particles have moved (or smoothing lengths have
  grown) enough to possibly change the answer — the classic
  ``max_disp > skin/2`` criterion, extended with an ``h``-growth term so
  adaptive smoothing lengths can never invalidate the cache silently.
  Each query re-filters the cached candidates against the *exact*
  per-pair cutoff, so the returned pair set is identical to a fresh
  search (the property tests assert this).
* **Per-step memoization** (:class:`StepContext`): ``W(r, h_i)``,
  ``W(r, h_j)``, ``dW/dh`` and the IAD gradient vectors ``A_i``/``A_j``
  are evaluated once per step and shared by ``Density``,
  ``IADVelocityDivCurl``, ``MomentumEnergy`` and the grad-h correction
  (previously each consumer re-evaluated them from scratch).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.sph.box import Box
from repro.sph.kernels.cubic_spline import SUPPORT_RADIUS, CubicSplineKernel
from repro.sph.neighbors import HalfPairList, _pair_geometry, find_neighbors

#: Default Verlet skin, as a fraction of the mean kernel support.
DEFAULT_SKIN_FACTOR = 0.3


# -- symmetric scatter-add helpers ---------------------------------------------


def scatter_sum(idx: np.ndarray, weights: np.ndarray, n: int) -> np.ndarray:
    """Sum ``weights`` into ``n`` scalar bins at ``idx`` (vectorized)."""
    return np.bincount(idx, weights=weights, minlength=n)


def scatter_sum_rows(idx: np.ndarray, rows: np.ndarray, n: int) -> np.ndarray:
    """Sum ``(k, m)`` rows into an ``(n, m)`` array at row indices ``idx``.

    One flattened ``bincount`` over ``idx * m + column`` — the shared
    replacement for the per-axis Python loops the physics kernels used to
    carry (and much faster than ``np.add.at``, which is not vectorized).
    """
    k, m = rows.shape
    flat_idx = (idx[:, None] * m + np.arange(m)).ravel()
    out = np.bincount(flat_idx, weights=rows.ravel(), minlength=n * m)
    return out.reshape(n, m)


def scatter_sum_sym(
    i: np.ndarray,
    j: np.ndarray,
    terms_i: np.ndarray,
    terms_j: np.ndarray,
    n: int,
) -> np.ndarray:
    """Half-pair scalar accumulation: ``terms_i`` onto ``i``, ``terms_j``
    onto ``j``, in a single pass."""
    return np.bincount(
        np.concatenate([i, j]),
        weights=np.concatenate([terms_i, terms_j]),
        minlength=n,
    )


def scatter_sum_sym_rows(
    i: np.ndarray,
    j: np.ndarray,
    rows_i: np.ndarray,
    rows_j: np.ndarray,
    n: int,
) -> np.ndarray:
    """Half-pair row accumulation: ``rows_i`` onto ``i``, ``rows_j`` onto
    ``j``, in a single flattened pass."""
    return scatter_sum_rows(
        np.concatenate([i, j]), np.concatenate([rows_i, rows_j]), n
    )


# -- the Verlet skin list ------------------------------------------------------


class VerletList:
    """Amortized neighbor search with a skin-inflated candidate cache.

    Parameters
    ----------
    box:
        Simulation box (periodic displacement handling).
    skin_factor:
        Skin width as a fraction of the mean kernel support
        (``skin = skin_factor * 2 * mean(h)`` at build time).  ``0``
        disables caching: every query is a fresh search.

    Notes
    -----
    The rebuild criterion tracks, per particle, an *effective* drift ::

        e_i = |x_i - x_i^build| + 2 * max(h_i - h_i^build, 0)

    and rebuilds when ``max_i e_i > skin / 2``.  The displacement term is
    the textbook Verlet condition (two particles approaching each other
    contribute ``skin/2`` each); the second term accounts for per-pair
    cutoff growth when smoothing lengths adapt, so the criterion subsumes
    "``h`` grew past the cached cutoff" exactly rather than via the
    global maximum.  Shrinking ``h`` never forces a rebuild.

    A query against a valid cache re-filters the candidates by the exact
    per-pair cutoff ``2 max(h_i, h_j)``, so the returned
    :class:`~repro.sph.neighbors.HalfPairList` always equals a fresh
    search's, independent of when the last rebuild happened.
    """

    def __init__(self, box: Box, skin_factor: float = DEFAULT_SKIN_FACTOR) -> None:
        if skin_factor < 0:
            raise SimulationError(
                f"skin factor must be non-negative, got {skin_factor!r}"
            )
        self.box = box
        self.skin_factor = skin_factor
        #: Number of candidate-list (re)builds performed.
        self.n_builds = 0
        #: Number of queries served (builds + cache reuses).
        self.n_queries = 0
        self._cand_i: np.ndarray | None = None
        self._cand_j: np.ndarray | None = None
        self._ref_pos: np.ndarray | None = None
        self._ref_h: np.ndarray | None = None
        self._skin = 0.0

    @property
    def rebuild_fraction(self) -> float:
        """Builds per query (1.0 = no amortization yet)."""
        return self.n_builds / self.n_queries if self.n_queries else 0.0

    def invalidate(self) -> None:
        """Drop the cached candidate list (next query rebuilds)."""
        self._cand_i = None
        self._cand_j = None
        self._ref_pos = None
        self._ref_h = None

    def reorder(self, order: np.ndarray) -> None:
        """Follow a particle permutation (``new[k] = old[order[k]]``).

        The SFC sort in ``DomainDecompAndSync`` relabels particles every
        step; remapping the cached candidate indices through the inverse
        permutation keeps the cache valid across sorts.
        """
        if self._cand_i is None:
            return
        if len(order) != len(self._ref_pos):
            self.invalidate()
            return
        inverse = np.empty_like(order)
        inverse[order] = np.arange(len(order), dtype=order.dtype)
        i = inverse[self._cand_i]
        j = inverse[self._cand_j]
        # Keep the i < j half-pair orientation after relabeling.
        self._cand_i = np.minimum(i, j)
        self._cand_j = np.maximum(i, j)
        self._ref_pos = self._ref_pos[order]
        self._ref_h = self._ref_h[order]

    def query(self, pos: np.ndarray, h: np.ndarray) -> HalfPairList:
        """Exact half-pair list for the current positions and supports."""
        self.n_queries += 1
        if self._needs_rebuild(pos, h):
            self._build(pos, h)
        i, j, dx, r = _pair_geometry(pos, h, self.box, self._cand_i, self._cand_j)
        return HalfPairList(i=i, j=j, dx=dx, r=r, n_particles=len(pos))

    def _needs_rebuild(self, pos: np.ndarray, h: np.ndarray) -> bool:
        if self._cand_i is None or len(pos) != len(self._ref_pos):
            return True
        if self._skin <= 0.0:
            return True
        drift = self.box.displacement(pos - self._ref_pos)
        effective = np.sqrt(np.einsum("ij,ij->i", drift, drift))
        effective += SUPPORT_RADIUS * np.maximum(h - self._ref_h, 0.0)
        return bool(effective.max() > 0.5 * self._skin)

    def _build(self, pos: np.ndarray, h: np.ndarray) -> None:
        self.n_builds += 1
        self._skin = self.skin_factor * SUPPORT_RADIUS * float(np.mean(h))
        # Inflating every h by skin/2h-units makes the per-pair candidate
        # cutoff exactly 2 max(h_i, h_j) + skin.
        h_search = h + self._skin / SUPPORT_RADIUS
        candidates = find_neighbors(pos, h_search, self.box, half=True)
        self._cand_i = candidates.i
        self._cand_j = candidates.j
        self._ref_pos = pos.copy()
        self._ref_h = h.copy()


# -- the per-step kernel cache -------------------------------------------------


class StepContext:
    """Memoized per-pair kernel quantities for one propagator step.

    Wraps a :class:`~repro.sph.neighbors.HalfPairList` plus the smoothing
    lengths the step runs with, and lazily evaluates (once each):

    ``w_i``/``w_j``
        ``W(r, h_i)`` and ``W(r, h_j)`` per pair — shared by ``Density``,
        ``IADVelocityDivCurl`` and the IAD gradient vectors.
    ``dwdh_i``/``dwdh_j``
        ``dW/dh`` per pair, for the grad-h (Omega) correction.
    :meth:`iad_vectors`
        The corrected gradient vectors ``A_i``/``A_j``, keyed on the
        identity of the ``c_iad`` matrix array so the cache can never
        serve vectors computed from stale matrices (the distributed
        driver refreshes halo matrices between IAD and MomentumEnergy,
        producing a new array and therefore a recompute).
    """

    def __init__(
        self,
        pairs: HalfPairList,
        h: np.ndarray,
        kernel=CubicSplineKernel,
    ) -> None:
        self.pairs = pairs
        self.h = h
        self.kernel = kernel
        self._w_i: np.ndarray | None = None
        self._w_j: np.ndarray | None = None
        self._dwdh_i: np.ndarray | None = None
        self._dwdh_j: np.ndarray | None = None
        self._iad_key: np.ndarray | None = None
        self._iad: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def n_particles(self) -> int:
        return self.pairs.n_particles

    @property
    def w_i(self) -> np.ndarray:
        """``W(r, h_i)`` per half pair (memoized)."""
        if self._w_i is None:
            self._w_i = self.kernel.value(self.pairs.r, self.h[self.pairs.i])
        return self._w_i

    @property
    def w_j(self) -> np.ndarray:
        """``W(r, h_j)`` per half pair (memoized)."""
        if self._w_j is None:
            self._w_j = self.kernel.value(self.pairs.r, self.h[self.pairs.j])
        return self._w_j

    @property
    def dwdh_i(self) -> np.ndarray:
        """``dW/dh`` at ``h_i`` per half pair (memoized)."""
        if self._dwdh_i is None:
            from repro.sph.physics.grad_h import kernel_dh

            self._dwdh_i = kernel_dh(self.pairs.r, self.h[self.pairs.i], self.kernel)
        return self._dwdh_i

    @property
    def dwdh_j(self) -> np.ndarray:
        """``dW/dh`` at ``h_j`` per half pair (memoized)."""
        if self._dwdh_j is None:
            from repro.sph.physics.grad_h import kernel_dh

            self._dwdh_j = kernel_dh(self.pairs.r, self.h[self.pairs.j], self.kernel)
        return self._dwdh_j

    def iad_vectors(self, c_iad: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``A_i,ij`` and ``A_j,ij`` per half pair (memoized per matrix set).

        Both vectors point along ``x_j - x_i``; the mirrored pair's
        vectors are their exact negatives, which is what makes the
        symmetric momentum scatter conserve to round-off.
        """
        # Keyed by array *identity* (holding the reference, so a freed
        # array's address can never be recycled into a false cache hit).
        if self._iad is None or self._iad_key is not c_iad:
            d = -self.pairs.dx  # x_j - x_i
            a_i = np.einsum("kab,kb->ka", c_iad[self.pairs.i], d)
            a_i *= self.w_i[:, None]
            a_j = np.einsum("kab,kb->ka", c_iad[self.pairs.j], d)
            a_j *= self.w_j[:, None]
            self._iad = (a_i, a_j)
            self._iad_key = c_iad
        return self._iad
