"""Device specification records.

Specs combine a performance envelope (peak FLOP rate, memory bandwidth)
with a :class:`~repro.hardware.power_model.PowerModel`.  The performance
side feeds the SPH roofline performance model; the power side feeds the
power traces that sensors observe.

Numbers for the concrete devices (MI250X GCD, A100-SXM4, A100-PCIE, EPYC,
Xeon) live in :mod:`repro.config`; this module only defines the shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareError
from repro.hardware.power_model import PowerModel

@dataclass(frozen=True)
class GpuSpec:
    """Specification of one schedulable GPU unit.

    For NVIDIA cards this is the whole card; for AMD MI250X it is one GCD
    (GPU Complex Die) — the unit one MPI rank drives.  ``gcds_per_card``
    records how many of these units share one *power sensor* (pm_counters
    reports per card), which is the source of the LUMI-G attribution
    inaccuracy discussed in Sections 2 and 3.1 of the paper.
    """

    model: str
    memory_gib: float
    nominal_freq_hz: float
    memory_freq_hz: float
    supported_freqs_hz: tuple[float, ...]
    peak_flops: float
    peak_bandwidth: float
    power_model: PowerModel
    gcds_per_card: int = 1
    vendor: str = "generic"

    def __post_init__(self) -> None:
        if self.nominal_freq_hz <= 0:
            raise HardwareError("GPU nominal frequency must be positive")
        if self.peak_flops <= 0 or self.peak_bandwidth <= 0:
            raise HardwareError("GPU peak rates must be positive")
        if self.gcds_per_card not in (1, 2):
            raise HardwareError(
                f"gcds_per_card must be 1 or 2, got {self.gcds_per_card!r}"
            )
        if self.nominal_freq_hz not in self.supported_freqs_hz:
            raise HardwareError(
                "nominal frequency must be among supported frequencies"
            )

    def peak_flops_at(self, freq_hz: float) -> float:
        """Peak FLOP rate at compute frequency ``freq_hz`` (linear scaling)."""
        return self.peak_flops * (freq_hz / self.nominal_freq_hz)


@dataclass(frozen=True)
class CpuSpec:
    """Specification of one CPU socket."""

    model: str
    cores: int
    nominal_freq_hz: float
    peak_flops: float
    power_model: PowerModel

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise HardwareError("CPU core count must be positive")
        if self.nominal_freq_hz <= 0:
            raise HardwareError("CPU nominal frequency must be positive")


@dataclass(frozen=True)
class MemorySpec:
    """Specification of the node DRAM subsystem."""

    capacity_gib: float
    peak_bandwidth: float
    power_model: PowerModel

    def __post_init__(self) -> None:
        if self.capacity_gib <= 0:
            raise HardwareError("memory capacity must be positive")


@dataclass(frozen=True)
class NicSpec:
    """Specification of the network interface."""

    model: str
    bandwidth_bytes_per_s: float
    latency_s: float
    power_model: PowerModel

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise HardwareError("NIC bandwidth must be positive")
        if self.latency_s < 0:
            raise HardwareError("NIC latency must be >= 0")
