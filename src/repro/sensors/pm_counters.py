"""HPE/Cray ``pm_counters`` telemetry.

On HPE/Cray EX systems (LUMI-G), the blade BMC exposes node-level telemetry
as small text files under ``/sys/cray/pm_counters``::

    power            # whole node, watts
    energy           # whole node, joules (monotonic accumulator)
    cpu_power / cpu_energy
    memory_power / memory_energy
    accel0_power / accel0_energy ... accelN_*   # one per GPU *card*

File contents look like ``"284 W 1663261174293871 us"`` — integer value,
unit, microsecond timestamp.  The counters refresh at ~10 Hz with integer
watt/joule resolution.  Crucially, there is one ``accel`` counter per
physical card: on MI250X nodes two MPI ranks (two GCDs) share one counter,
which is the attribution problem Sections 2/3.1 of the paper discuss.
"""

from __future__ import annotations

from repro.errors import SensorError
from repro.hardware.node import Node
from repro.sensors.base import SampledEnergyCounter, SensorReading
from repro.sensors.sysfs import VirtualSysfs

#: Default pm_counters refresh cadence (10 Hz).
PM_COUNTERS_PERIOD_S = 0.1

#: pm_counters sysfs directory.
PM_COUNTERS_DIR = "/sys/cray/pm_counters"


def _format_pm_file(value: float, unit: str, t: float) -> str:
    """Render a pm_counters file body: ``"<int> <unit> <usecs> us"``."""
    return f"{int(value)} {unit} {int(t * 1e6)} us"


class PmCounters:
    """The pm_counters counter set of one node.

    Parameters
    ----------
    node:
        The node whose ground-truth traces the BMC observes.
    sysfs:
        Virtual sysfs to register the counter files in.
    include_memory:
        Whether the platform provides the ``memory_*`` files (LUMI-G does).
    seed:
        Base seed for the (deterministic) sensor noise streams.
    """

    def __init__(
        self,
        node: Node,
        sysfs: VirtualSysfs,
        include_memory: bool = True,
        seed: int = 0,
        period_s: float = PM_COUNTERS_PERIOD_S,
    ) -> None:
        self.node = node
        self.sysfs = sysfs
        self.period_s = period_s

        def counter(trace, offset: int) -> SampledEnergyCounter:
            # Real pm_counters accumulate since node boot: start each
            # counter at a deterministic nonzero base so consumers that
            # forget to difference two reads fail loudly in tests.
            base = float((seed * 131 + offset * 977_351) % 400_000_000)
            return SampledEnergyCounter(
                trace,
                refresh_period_s=period_s,
                watts_quantum=1.0,
                energy_quantum=1.0,
                noise_sigma_watts=0.0,
                seed=seed + offset,
                initial_joules=base,
            )

        # Counters live in a dict keyed by file stem, and the registered
        # sysfs readers look the counter up *at read time* — so the fault
        # injection layer (repro.sensors.inject) can swap a counter for a
        # fault-wrapped one and every consumer path sees the fault.
        self.counters: dict[str, SampledEnergyCounter] = {"": counter(node.trace, 1)}
        self.counters["cpu"] = counter(node.cpu.trace, 2)
        if include_memory:
            self.counters["memory"] = counter(node.memory.trace, 3)
        for i, card in enumerate(node.cards):
            self.counters[f"accel{i}"] = counter(card.trace, 10 + i)

        self._register_files()

    # -- counter accessors (late-binding aliases) -------------------------------

    @property
    def node_counter(self) -> SampledEnergyCounter:
        """The whole-node counter."""
        return self.counters[""]

    @property
    def cpu_counter(self) -> SampledEnergyCounter:
        """The CPU counter."""
        return self.counters["cpu"]

    @property
    def memory_counter(self) -> SampledEnergyCounter | None:
        """The memory counter, if the platform provides one."""
        return self.counters.get("memory")

    @property
    def accel_counters(self) -> list[SampledEnergyCounter]:
        """Per-card accelerator counters, in card order."""
        return [
            self.counters[f"accel{i}"] for i in range(len(self.node.cards))
        ]

    # -- sysfs surface --------------------------------------------------------

    def _register_pair(self, stem: str) -> None:
        self.sysfs.register(
            f"{PM_COUNTERS_DIR}/{stem}_power" if stem else f"{PM_COUNTERS_DIR}/power",
            lambda t, k=stem: _format_pm_file(self.counters[k].read(t).watts, "W", t),
        )
        self.sysfs.register(
            f"{PM_COUNTERS_DIR}/{stem}_energy" if stem else f"{PM_COUNTERS_DIR}/energy",
            lambda t, k=stem: _format_pm_file(self.counters[k].read(t).joules, "J", t),
        )

    def _register_files(self) -> None:
        for stem in self.counters:
            self._register_pair(stem)

    # -- direct reads ----------------------------------------------------------

    def read_node(self, t: float) -> SensorReading:
        """Node-level counter state at time ``t``."""
        return self.node_counter.read(t)

    def read_cpu(self, t: float) -> SensorReading:
        """CPU counter state at time ``t``."""
        return self.cpu_counter.read(t)

    def read_memory(self, t: float) -> SensorReading:
        """Memory counter state; raises if the platform lacks the sensor."""
        if self.memory_counter is None:
            raise SensorError("this platform has no memory pm_counters files")
        return self.memory_counter.read(t)

    def read_accel(self, card_index: int, t: float) -> SensorReading:
        """Per-card accelerator counter state at time ``t``."""
        try:
            sensor = self.counters[f"accel{card_index}"]
        except KeyError:
            raise SensorError(
                f"no accel counter {card_index} (node has "
                f"{len(self.node.cards)} cards)"
            ) from None
        return sensor.read(t)


def parse_pm_file(content: str) -> tuple[float, str, float]:
    """Parse a pm_counters file body into ``(value, unit, timestamp_s)``."""
    parts = content.split()
    if len(parts) != 4 or parts[3] != "us":
        raise SensorError(f"malformed pm_counters file content: {content!r}")
    return float(parts[0]), parts[1], float(parts[2]) / 1e6
