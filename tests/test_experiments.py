"""Integration tests: each paper experiment reproduces the right *shape*.

These run the real experiment pipelines at reduced step counts (the
benchmarks run the full 100-step versions) and assert the qualitative
claims of each figure.
"""

import pytest

from repro.analysis.breakdown import device_breakdown, function_breakdown
from repro.analysis.edp import function_edp, normalized_edp_series, run_edp
from repro.analysis.validation import validate_pmt_against_slurm
from repro.config import (
    CSCS_A100,
    EVRARD_COLLAPSE,
    LUMI_G,
    MINIHPC,
    SUBSONIC_TURBULENCE,
)
from repro.errors import DvfsError
from repro.experiments import table1_text
from repro.experiments.frequency import particles_of_side
from repro.experiments.runner import run_scaled_experiment
from repro.experiments.validation import figure1_series, figure1_table

STEPS = 10  # reduced from the paper's 100 for test runtime


@pytest.fixture(scope="module")
def lumi_turb():
    return run_scaled_experiment(LUMI_G, SUBSONIC_TURBULENCE, 8, num_steps=STEPS)


@pytest.fixture(scope="module")
def cscs_turb():
    return run_scaled_experiment(CSCS_A100, SUBSONIC_TURBULENCE, 8, num_steps=STEPS)


class TestRunner:
    def test_result_fields(self, cscs_turb):
        assert cscs_turb.num_cards == 8
        assert cscs_turb.run.num_ranks == 8
        assert cscs_turb.run.num_nodes == 2
        assert cscs_turb.gpu_freq_mhz == pytest.approx(1410.0)

    def test_lumi_two_ranks_per_card(self, lumi_turb):
        assert lumi_turb.run.num_ranks == 16  # 8 cards x 2 GCDs
        assert lumi_turb.run.gcds_per_card == 2

    def test_evrard_has_gravity_function(self):
        result = run_scaled_experiment(
            CSCS_A100, EVRARD_COLLAPSE, 8, num_steps=3
        )
        assert "Gravity" in result.run.functions()
        assert "TurbulenceDriving" not in result.run.functions()

    def test_frequency_control_enforced(self):
        """Production systems reject user DVFS, exactly as in the paper."""
        with pytest.raises(DvfsError):
            run_scaled_experiment(
                LUMI_G, SUBSONIC_TURBULENCE, 8, gpu_freq_mhz=1000.0, num_steps=1
            )
        # miniHPC allows it.
        run_scaled_experiment(
            MINIHPC,
            SUBSONIC_TURBULENCE,
            2,
            gpu_freq_mhz=1005.0,
            num_steps=1,
            particles_per_rank=1e6,
        )


class TestFigure1Shape:
    def test_pmt_below_slurm_everywhere(self, lumi_turb, cscs_turb):
        for result in (lumi_turb, cscs_turb):
            point = validate_pmt_against_slurm(
                result.run, result.accounting, result.num_cards
            )
            # At the test's reduced 10 steps the fixed setup phases weigh
            # far more than in the paper's 100-step runs, so the ratio is
            # lower here; the full-length benchmark lands at ~0.8-0.9.
            assert 0.2 < point.ratio < 1.0

    def test_lumi_gap_larger_than_cscs(self, lumi_turb, cscs_turb):
        lumi = validate_pmt_against_slurm(lumi_turb.run, lumi_turb.accounting, 8)
        cscs = validate_pmt_against_slurm(cscs_turb.run, cscs_turb.accounting, 8)
        assert lumi.ratio < cscs.ratio

    def test_series_helper(self):
        points = figure1_series(
            CSCS_A100, card_counts=(8, 16), num_steps=3
        )
        assert [p.num_cards for p in points] == [8, 16]
        assert points[1].slurm_joules > points[0].slurm_joules
        table = figure1_table(points)
        assert "PMT/Slurm" in table


class TestFigure2Shape:
    def test_gpu_dominates_both_systems(self, lumi_turb, cscs_turb):
        for result in (lumi_turb, cscs_turb):
            bd = device_breakdown(result.run)
            shares = bd.shares
            assert 0.6 < shares["GPU"] < 0.85
            assert shares["GPU"] == max(shares.values())

    def test_memory_only_on_lumi(self, lumi_turb, cscs_turb):
        assert "Memory" in device_breakdown(lumi_turb.run).joules
        assert "Memory" not in device_breakdown(cscs_turb.run).joules

    def test_other_is_second_largest(self, cscs_turb):
        shares = device_breakdown(cscs_turb.run).shares
        ordered = sorted(shares, key=shares.get, reverse=True)
        assert ordered[0] == "GPU"
        assert ordered[1] == "Other"

    def test_lumi_total_exceeds_cscs(self, lumi_turb, cscs_turb):
        """Figure 2 totals: LUMI-Turb > CSCS-Turb at equal card counts."""
        lumi = device_breakdown(lumi_turb.run).total_joules
        cscs = device_breakdown(cscs_turb.run).total_joules
        assert lumi > cscs


class TestFigure3Shape:
    def test_momentum_energy_dominates_gpu(self, lumi_turb, cscs_turb):
        for result in (lumi_turb, cscs_turb):
            rows = function_breakdown(result.run, "gpu")
            assert rows[0].function == "MomentumEnergy"

    def test_momentum_energy_share_higher_on_lumi(self, lumi_turb, cscs_turb):
        """The paper's headline: 45.8 % of GPU energy on LUMI-G vs
        25.29 % on CSCS-A100."""

        def share(result):
            rows = function_breakdown(result.run, "gpu")
            total = sum(r.joules for r in rows)
            me = next(r for r in rows if r.function == "MomentumEnergy")
            return me.joules / total

        assert share(lumi_turb) > share(cscs_turb) + 0.08
        assert 0.35 < share(lumi_turb) < 0.55
        assert 0.18 < share(cscs_turb) < 0.35

    def test_cpu_energy_tracks_function_time(self, cscs_turb):
        """CPU energy per function is roughly proportional to duration
        (the CPU idles but still draws power while each function runs)."""
        rows = function_breakdown(cscs_turb.run, "cpu")
        by_time = sorted(rows, key=lambda r: r.seconds, reverse=True)
        by_energy = sorted(rows, key=lambda r: r.joules, reverse=True)
        assert by_time[0].function == by_energy[0].function


class TestFigures4And5Shape:
    @pytest.fixture(scope="class")
    def sweep(self):
        runs = {}
        for side in (200, 450):
            for freq in (1410.0, 1005.0):
                runs[(side, freq)] = run_scaled_experiment(
                    MINIHPC,
                    SUBSONIC_TURBULENCE,
                    2,
                    gpu_freq_mhz=freq,
                    num_steps=STEPS,
                    particles_per_rank=particles_of_side(side),
                )
        return runs

    def test_downscaling_reduces_whole_run_edp(self, sweep):
        for side in (200, 450):
            series = {
                freq: run_edp(sweep[(side, freq)].run) for freq in (1410.0, 1005.0)
            }
            norm = normalized_edp_series(series, 1410.0)
            assert norm[1005.0] < 1.0

    def test_small_problem_benefits_most(self, sweep):
        def drop(side):
            series = {
                freq: run_edp(sweep[(side, freq)].run) for freq in (1410.0, 1005.0)
            }
            return normalized_edp_series(series, 1410.0)[1005.0]

        assert drop(200) < drop(450)

    def test_time_to_solution_increases(self, sweep):
        assert (
            sweep[(450, 1005.0)].run.app_seconds
            > sweep[(450, 1410.0)].run.app_seconds
        )

    def test_function_edp_contrast(self, sweep):
        """Compute-bound functions don't benefit; DomainDecompAndSync does."""
        ratios = {}
        low = function_edp(sweep[(450, 1005.0)].run)
        base = function_edp(sweep[(450, 1410.0)].run)
        for fn in base:
            if base[fn] > 0:
                ratios[fn] = low[fn] / base[fn]
        assert ratios["MomentumEnergy"] > 0.9  # no meaningful benefit
        assert ratios["DomainDecompAndSync"] < 0.85  # clear benefit
        assert ratios["DomainDecompAndSync"] < ratios["MomentumEnergy"]
        assert ratios["Density"] < 0.9


class TestTable1:
    def test_contains_all_rows(self):
        text = table1_text()
        for needle in (
            "LUMI-G",
            "CSCS-A100",
            "miniHPC",
            "MI250X",
            "A100",
            "150 million",
            "80 million",
            "1700 MHz",
            "1410 MHz",
        ):
            assert needle in text
