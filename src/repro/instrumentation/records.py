"""Measurement records and their on-disk format.

The instrumented application stores, per MPI rank and per loop function,
the accumulated wall time and the energy of each measurable counter
(``gpu``, ``cpu``, ``memory``, ``node``).  At the end of the run the
records are gathered to one structure and written to a JSON file for
post-hoc analysis ("stored into a file ... to avoid perturbing the actual
simulation", Section 2).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.errors import AnalysisError

#: Canonical counter names a rank can report.
COUNTERS = ("gpu", "cpu", "memory", "node")


@dataclass
class FunctionEnergyRecord:
    """Accumulated measurements of one function on one rank."""

    rank: int
    function: str
    calls: int = 0
    seconds: float = 0.0
    #: Raw counter deltas in joules (uncorrected for sensor sharing).
    joules: dict[str, float] = field(default_factory=dict)
    #: Telemetry mitigations that fired while this region was open, as
    #: counter deltas (``retries``, ``gaps_interpolated``, ``gap_seconds``,
    #: ``glitches_rejected``, ``stuck_reads``...).  Empty for a clean run.
    health: dict[str, float] = field(default_factory=dict)

    def accumulate(
        self,
        seconds: float,
        joules: dict[str, float],
        health: dict[str, float] | None = None,
    ) -> None:
        """Add one instrumented call's measurements."""
        if seconds < 0:
            raise AnalysisError("negative region duration")
        self.calls += 1
        self.seconds += seconds
        for name, value in joules.items():
            self.joules[name] = self.joules.get(name, 0.0) + value
        for name, value in (health or {}).items():
            self.health[name] = self.health.get(name, 0.0) + value


@dataclass
class TelemetryHealthRecord:
    """Per-node data-quality counters of the measurement pipeline.

    One record per node summarises every mitigation the resilient
    measurement layer performed during the run: failed reads retried,
    gaps filled by last-good-value interpolation, implausible power
    samples rejected, and stuck-counter detections.  ``degraded_children``
    names the meters that served substituted (not directly sensed) values
    at any point; ``status`` is ``"ok"`` only when no substitution was
    ever needed.
    """

    node_index: int
    reads: int = 0
    retries: int = 0
    retry_successes: int = 0
    gaps_interpolated: int = 0
    gap_seconds: float = 0.0
    glitches_rejected: int = 0
    stuck_reads: int = 0
    stuck_detections: int = 0
    suspect_intervals: int = 0
    degraded_children: list[str] = field(default_factory=list)
    status: str = "ok"


@dataclass
class NodeWindowRecord:
    """Per-node counter deltas over the whole application window."""

    node_index: int
    node_joules: float
    cpu_joules: float
    memory_joules: float | None
    card_joules: list[float] = field(default_factory=list)


@dataclass
class RunMeasurements:
    """Everything one instrumented run produces (post-gather)."""

    system_name: str
    test_case: str
    num_ranks: int
    num_nodes: int
    gcds_per_card: int
    gpu_freq_mhz: float
    num_steps: int
    particles_per_rank: float
    app_start: float
    app_end: float
    records: list[FunctionEnergyRecord] = field(default_factory=list)
    node_windows: list[NodeWindowRecord] = field(default_factory=list)
    #: Per-node telemetry data-quality summary (empty when the run was
    #: measured without the resilient layer, e.g. old measurement files).
    telemetry_health: list[TelemetryHealthRecord] = field(default_factory=list)

    @property
    def app_seconds(self) -> float:
        """Wall time of the instrumented window (first to last time-step)."""
        return self.app_end - self.app_start

    @property
    def ranks_per_node(self) -> int:
        """MPI ranks per node."""
        return self.num_ranks // self.num_nodes

    @property
    def telemetry_degraded(self) -> bool:
        """True when any node served substituted (degraded) measurements."""
        return any(h.status != "ok" for h in self.telemetry_health)

    def functions(self) -> list[str]:
        """Function names present, in first-seen order."""
        seen: dict[str, None] = {}
        for rec in self.records:
            seen.setdefault(rec.function, None)
        return list(seen)

    def record(self, rank: int, function: str) -> FunctionEnergyRecord:
        """The record of (rank, function)."""
        for rec in self.records:
            if rec.rank == rank and rec.function == function:
                return rec
        raise AnalysisError(f"no record for rank {rank}, function {function!r}")

    # -- persistence --------------------------------------------------------------

    def to_json(self) -> str:
        """Serialize to the post-hoc analysis file format."""
        payload = asdict(self)
        return json.dumps(payload, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "RunMeasurements":
        """Parse a measurement file."""
        try:
            payload = json.loads(text)
            records = [FunctionEnergyRecord(**r) for r in payload.pop("records")]
            windows = [NodeWindowRecord(**w) for w in payload.pop("node_windows")]
            # Absent in files written before the resilient measurement layer.
            health = [
                TelemetryHealthRecord(**h)
                for h in payload.pop("telemetry_health", [])
            ]
            return cls(
                records=records,
                node_windows=windows,
                telemetry_health=health,
                **payload,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise AnalysisError(f"malformed measurement file: {exc}") from exc

    def write(self, path: str | Path) -> None:
        """Write the measurement file."""
        Path(path).write_text(self.to_json())

    @classmethod
    def read(cls, path: str | Path) -> "RunMeasurements":
        """Load a measurement file."""
        return cls.from_json(Path(path).read_text())
