"""Instrumented application with per-function dynamic DVFS.

Identical to :class:`~repro.sph.scaled.ScaledSphApplication` except that
before every loop function each rank's GPU clock is set to the policy's
frequency for that function.  Frequency transitions are not free: each
actual switch costs ``DVFS_SWITCH_LATENCY_S`` with the GPU idle, which is
why naive per-function switching can lose on very short functions — the
policy has to earn the switch.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.instrumentation.profiler import EnergyProfiler
from repro.mpi.engine import RankWork, SpmdEngine
from repro.sph.perfmodel import SphPerformanceModel
from repro.sph.scaled import ScaledSphApplication
from repro.tuning.policy import FrequencyPolicy
from repro.units import mhz

#: Time to reprogram the GPU clock (driver + PLL relock), per switch.
DVFS_SWITCH_LATENCY_S = 0.010


class DynamicDvfsApplication(ScaledSphApplication):
    """Paper-scale run that re-clocks the GPU at function boundaries."""

    def __init__(
        self,
        engine: SpmdEngine,
        profiler: EnergyProfiler,
        perfmodel: SphPerformanceModel,
        functions: tuple[str, ...],
        num_steps: int,
        test_case_name: str,
        policy: FrequencyPolicy,
        switch_latency_s: float = DVFS_SWITCH_LATENCY_S,
    ) -> None:
        super().__init__(
            engine, profiler, perfmodel, functions, num_steps, test_case_name
        )
        if switch_latency_s < 0:
            raise SimulationError("switch latency must be >= 0")
        self.policy = policy
        self.switch_latency_s = switch_latency_s
        #: Number of actual clock transitions performed.
        self.switch_count = 0

    def _snap_to_supported(self, freq_mhz: float) -> float:
        """Round the requested frequency to the nearest supported step."""
        gpu = self.engine.placement.gpu_of(0)
        supported = gpu.frequency.supported_hz
        return min(supported, key=lambda f: abs(f - mhz(freq_mhz)))

    def _apply_policy(self, function: str) -> None:
        requested = self.policy.frequency_for(function)
        if requested is None:
            return  # the policy has no opinion: keep the running clock
        target_hz = self._snap_to_supported(requested)
        placement = self.engine.placement
        if placement.gpu_of(0).frequency.current_hz == target_hz:
            return
        # Pay the reprogramming latency with every GPU idle, then switch.
        if self.switch_latency_s > 0:
            idle = [
                RankWork(duration=self.switch_latency_s, cpu_share=0.02)
                for _ in range(placement.size)
            ]
            self.engine.run_phase(idle)
        for rank in range(placement.size):
            placement.gpu_of(rank).set_frequency(target_hz)
        self.switch_count += 1

    def _run_function(self, function: str, step: int) -> None:
        self._apply_policy(function)
        super()._run_function(function, step)
