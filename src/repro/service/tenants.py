"""Multi-tenant ingest state: per-tenant stores, queues and accounting.

The service multiplexes many publishers into per-tenant
:class:`~repro.timeseries.store.SampleStore` instances.  Everything in
this module is synchronous and deterministic — the asyncio layer on top
only decides *when* to call it, never *what* it computes — so the ingest
accounting summary of a scripted feed is byte-identical run to run (the
determinism CI gate diffs it).

Backpressure is a bounded per-tenant write queue measured in *samples*:

* ``offer`` enqueues a parsed batch, or — when the queue is saturated —
  sheds it **with accounting** (``batches_shed``/``samples_shed``
  counters; nothing is ever dropped silently);
* ``drain`` applies queued batches to the tiered store in arrival order;
* the asyncio server calls ``offer`` from connection handlers and
  ``drain`` from a background task, and pauses reading a ``wait``-mode
  session's socket while its tenant is saturated (TCP backpressure)
  instead of shedding.

The tiered store bounds *memory* per channel by construction; the queue
bounds the ingest *latency* window.  ``memory_cap_bytes`` is therefore a
hard per-tenant cap that holds at any instant, no matter how fast
publishers push.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.timeseries.store import SampleStore

#: Default bound on one tenant's pending (queued, not yet applied) samples.
DEFAULT_MAX_PENDING_SAMPLES = 262_144


def batch_samples(channels: dict[str, tuple[np.ndarray, ...]]) -> int:
    """Total samples one parsed batch carries across its channels."""
    return sum(len(cols[0]) for cols in channels.values())


@dataclass(frozen=True)
class TenantConfig:
    """Sizing of one tenant's store and write queue."""

    raw_capacity: int = 4096
    bucket_size: int = 32
    bucket_capacity: int = 2048
    lttb_capacity: int = 1024
    max_pending_samples: int = DEFAULT_MAX_PENDING_SAMPLES

    def __post_init__(self) -> None:
        if self.max_pending_samples < 1:
            raise ConfigurationError(
                "max_pending_samples must be >= 1, got "
                f"{self.max_pending_samples}"
            )

    def make_store(self) -> SampleStore:
        return SampleStore(
            raw_capacity=self.raw_capacity,
            bucket_size=self.bucket_size,
            bucket_capacity=self.bucket_capacity,
            lttb_capacity=self.lttb_capacity,
        )


@dataclass
class IngestCounters:
    """One tenant's ingest ledger.

    The accounting identity every test and benchmark asserts::

        batches_offered == batches_ingested + batches_pending + batches_shed
                           + batches_rejected

    (and the same in samples).  ``rejected`` counts structurally invalid
    batches — out-of-order timestamps, column mismatches — which are
    refused *before* touching the store, and counted, never swallowed.
    """

    batches_offered: int = 0
    samples_offered: int = 0
    batches_ingested: int = 0
    samples_ingested: int = 0
    batches_shed: int = 0
    samples_shed: int = 0
    batches_rejected: int = 0
    samples_rejected: int = 0
    rejection_reasons: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "batches_offered": self.batches_offered,
            "samples_offered": self.samples_offered,
            "batches_ingested": self.batches_ingested,
            "samples_ingested": self.samples_ingested,
            "batches_shed": self.batches_shed,
            "samples_shed": self.samples_shed,
            "batches_rejected": self.batches_rejected,
            "samples_rejected": self.samples_rejected,
        }


@dataclass(frozen=True)
class _PendingBatch:
    node: int
    channels: dict[str, tuple[np.ndarray, ...]]
    num_samples: int


class Tenant:
    """One tenant's store, write queue and ledger."""

    def __init__(self, name: str, config: TenantConfig | None = None) -> None:
        if not name:
            raise ConfigurationError("tenant name must be non-empty")
        self.name = str(name)
        self.config = config if config is not None else TenantConfig()
        self.store = self.config.make_store()
        self.counters = IngestCounters()
        self._pending: deque[_PendingBatch] = deque()
        self._pending_samples = 0

    # -- ingest --------------------------------------------------------------

    @property
    def pending_batches(self) -> int:
        return len(self._pending)

    @property
    def pending_samples(self) -> int:
        return self._pending_samples

    @property
    def saturated(self) -> bool:
        """True when the write queue has no room for further samples."""
        return self._pending_samples >= self.config.max_pending_samples

    def offer(
        self,
        node: int,
        channels: dict[str, tuple[np.ndarray, ...]],
        *,
        force: bool = False,
    ) -> bool:
        """Enqueue one parsed batch; shed (with accounting) when it won't fit.

        Returns True when the batch was queued, False when it was shed.
        ``force=True`` enqueues unconditionally — the wait-mode server
        path uses it after blocking until the batch fits (or the queue
        drained empty, for a batch larger than the whole bound), so a
        lossless session may transiently overshoot the bound by at most
        one batch but never sheds.
        """
        num = batch_samples(channels)
        self.counters.batches_offered += 1
        self.counters.samples_offered += num
        if not force and self._pending_samples + num > self.config.max_pending_samples:
            self.counters.batches_shed += 1
            self.counters.samples_shed += num
            return False
        self._pending.append(_PendingBatch(int(node), channels, num))
        self._pending_samples += num
        return True

    def reject(self, reason: str, num_samples: int = 0) -> None:
        """Account one structurally invalid batch."""
        self.counters.batches_offered += 1
        self.counters.samples_offered += num_samples
        self.counters.batches_rejected += 1
        self.counters.samples_rejected += num_samples
        reasons = self.counters.rejection_reasons
        reasons[reason] = reasons.get(reason, 0) + 1

    def drain(self, max_batches: int | None = None) -> int:
        """Apply queued batches to the store in arrival order.

        Returns the number of samples applied.  A batch whose timestamps
        regress against the channel's stored timeline is rejected with
        accounting (the store's ordering invariant stays intact, and the
        drop is visible in QC).
        """
        applied = 0
        budget = len(self._pending) if max_batches is None else max_batches
        while self._pending and budget > 0:
            batch = self._pending.popleft()
            self._pending_samples -= batch.num_samples
            budget -= 1
            try:
                for name, (t, watts, joules, quality) in sorted(
                    batch.channels.items()
                ):
                    self.store.channel(batch.node, name).extend(
                        t, watts, joules, quality
                    )
            except Exception as exc:
                self.counters.batches_rejected += 1
                self.counters.samples_rejected += batch.num_samples
                reasons = self.counters.rejection_reasons
                key = type(exc).__name__
                reasons[key] = reasons.get(key, 0) + 1
                continue
            self.counters.batches_ingested += 1
            self.counters.samples_ingested += batch.num_samples
            applied += batch.num_samples
        return applied

    # -- caps and summaries --------------------------------------------------

    def memory_cap_bytes(self) -> int:
        """This tenant's hard store-memory cap (see ``SampleStore``)."""
        return self.store.memory_cap_bytes()

    def snapshot(self) -> dict:
        """Deterministic accounting snapshot (no latency, no wall time)."""
        return {
            "tenant": self.name,
            "channels": len(self.store),
            "store_bytes": self.store.nbytes,
            "memory_cap_bytes": self.memory_cap_bytes(),
            "pending_batches": self.pending_batches,
            "pending_samples": self.pending_samples,
            **self.counters.as_dict(),
        }


class TenantRegistry:
    """All tenants of one service instance."""

    def __init__(self, config: TenantConfig | None = None) -> None:
        self.default_config = config if config is not None else TenantConfig()
        self._tenants: dict[str, Tenant] = {}

    def get_or_create(self, name: str) -> Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            tenant = Tenant(name, self.default_config)
            self._tenants[name] = tenant
        return tenant

    def get(self, name: str) -> Tenant:
        try:
            return self._tenants[name]
        except KeyError:
            raise ConfigurationError(f"unknown tenant {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._tenants)

    def __len__(self) -> int:
        return len(self._tenants)

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    def drain_all(self, max_batches_per_tenant: int | None = None) -> dict[str, int]:
        """Drain every tenant (sorted order); samples applied per tenant."""
        return {
            name: self._tenants[name].drain(max_batches_per_tenant)
            for name in self.names()
        }

    def stores(self) -> dict[str, SampleStore]:
        """``tenant -> store`` for the multi-tenant Prometheus scrape."""
        return {name: self._tenants[name].store for name in self.names()}

    def snapshot(self) -> list[dict]:
        return [self._tenants[name].snapshot() for name in self.names()]

    def accounting_summary(self) -> str:
        """The deterministic ingest ledger, one tenant per line.

        This is the text the smoke benchmark commits and the determinism
        CI job diffs byte-for-byte: counts only — no latencies, no
        wall-clock, no ports.
        """
        lines = [
            f"{'tenant':>12} {'channels':>8} {'offered':>9} {'ingested':>9} "
            f"{'shed':>6} {'rejected':>8} {'pending':>7} {'bytes<=cap':>12}"
        ]
        for snap in self.snapshot():
            cap_ok = snap["store_bytes"] <= snap["memory_cap_bytes"]
            lines.append(
                f"{snap['tenant']:>12} {snap['channels']:>8} "
                f"{snap['samples_offered']:>9} {snap['samples_ingested']:>9} "
                f"{snap['samples_shed']:>6} {snap['samples_rejected']:>8} "
                f"{snap['pending_samples']:>7} "
                f"{str(cap_ok):>12}"
            )
        return "\n".join(lines)
