"""Composite PMT backend: several meters behind one interface.

The original toolkit lets an application hold one meter per device; in
practice instrumentation wants *one* ``read()`` per region covering all of
them (GPU + CPU on an NVML/RAPL platform, say).  The composite wraps any
set of PMT instances: its state's primary measurement is the sum of the
children's primaries, and every child measurement is re-exported with a
prefixed name for per-device analysis.
"""

from __future__ import annotations

from repro.errors import BackendError
from repro.pmt.base import PMT
from repro.pmt.registry import register_backend
from repro.pmt.state import Measurement, State


@register_backend("composite")
class CompositePMT(PMT):
    """A meter aggregating several child meters.

    Parameters
    ----------
    meters:
        Named child meters, e.g. ``{"gpu0": nvml_meter, "cpu": rapl_meter}``.
        All children must share one clock (one node / one simulation).
    """

    def __init__(self, meters: dict[str, PMT]) -> None:
        if not meters:
            raise BackendError("composite meter needs at least one child")
        clocks = {id(m.clock) for m in meters.values()}
        if len(clocks) != 1:
            raise BackendError("composite children must share one clock")
        super().__init__(next(iter(meters.values())).clock)
        self._meters = dict(meters)

    @property
    def children(self) -> tuple[str, ...]:
        """Names of the child meters."""
        return tuple(self._meters)

    def read_state(self) -> State:
        measurements: list[Measurement] = []
        total_joules = 0.0
        total_watts = 0.0
        for name, meter in self._meters.items():
            state = meter.read()
            total_joules += state.joules
            total_watts += state.watts
            for m in state.measurements:
                measurements.append(
                    Measurement(
                        name=f"{name}.{m.name}",
                        joules=m.joules,
                        watts=m.watts,
                    )
                )
        primary = Measurement(
            name="total", joules=total_joules, watts=total_watts
        )
        return State(
            timestamp=self.clock.now,
            measurements=(primary, *measurements),
        )
