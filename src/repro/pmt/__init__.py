"""PMT — Power Measurement Toolkit (simulated-platform port).

A faithful reimplementation of the PMT API (Corda et al., HUST 2022) that
the paper integrates into SPH-EXA.  The public surface mirrors the original
toolkit's Python bindings:

>>> import repro.pmt as pmt
>>> meter = pmt.create("cray", telemetry=node_telemetry)
>>> start = meter.read()
>>> # ... run the instrumented region ...
>>> end = meter.read()
>>> pmt.PMT.joules(start, end)     # energy over the region
>>> pmt.PMT.watts(start, end)      # average power over the region
>>> pmt.PMT.seconds(start, end)    # region duration

Backends: ``cray`` (pm_counters), ``nvml``, ``rapl``, ``rocm``, ``dummy``.
Each backend reads the simulated sensors through their native interfaces
(virtual sysfs files or NVML-style calls), so it inherits their cadence,
quantization, wraparound and attribution semantics.
"""

from repro.pmt.state import Measurement, State
from repro.pmt.base import PMT
from repro.pmt.registry import available_backends, create, register_backend
from repro.pmt.sampler import PmtSampler

# Importing the backends registers them with the factory.
from repro.pmt.backends import (  # noqa: F401
    composite,
    cray,
    dummy,
    nvml,
    rapl,
    resilient,
    rocm,
)

__all__ = [
    "Measurement",
    "State",
    "PMT",
    "create",
    "register_backend",
    "available_backends",
    "PmtSampler",
]
