"""Rolling-window statistics over telemetry tick streams.

:class:`RollingMean` keeps the time-ordered samples of one channel that
fall inside a trailing window and serves their arithmetic mean — the
"rolling node power" a power-cap governor compares against its budget.
Samples arrive from :class:`~repro.pmt.sampler.PmtSampler` ticks, whose
timestamps are monotone under the virtual clock, so eviction is a simple
front-pop; out-of-order timestamps are rejected rather than silently
reordered.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigurationError, MeasurementError


class RollingMean:
    """Arithmetic mean of the samples inside a trailing time window."""

    def __init__(self, window_s: float) -> None:
        # A zero or negative window is a configuration mistake (every
        # sample would be evicted the moment it arrives, so the "mean"
        # would never describe anything): reject it with the typed
        # configuration error instead of serving vacuous values.
        if window_s <= 0:
            raise ConfigurationError(
                f"rolling window must be positive, got {window_s!r}"
            )
        self.window_s = float(window_s)
        self._samples: deque[tuple[float, float]] = deque()
        self._sum = 0.0

    def __len__(self) -> int:
        return len(self._samples)

    def add(self, t: float, value: float) -> None:
        """Append one sample and evict everything older than the window."""
        if self._samples and t < self._samples[-1][0]:
            raise MeasurementError(
                f"rolling-window sample at t={t!r} precedes the newest "
                f"sample at t={self._samples[-1][0]!r}"
            )
        self._samples.append((t, float(value)))
        self._sum += float(value)
        horizon = t - self.window_s
        while self._samples and self._samples[0][0] < horizon:
            _, old = self._samples.popleft()
            self._sum -= old
        # Re-sum periodically so float cancellation from the running
        # subtraction cannot drift over million-tick runs.
        if len(self._samples) and self._sum < 0:
            self._sum = sum(v for _, v in self._samples)

    @property
    def mean(self) -> float:
        """Mean of the in-window samples (0.0 before the first sample)."""
        if not self._samples:
            return 0.0
        return self._sum / len(self._samples)
