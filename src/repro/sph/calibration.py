"""Calibrated cost coefficients for the paper-scale performance model.

These constants map each SPH-EXA loop function to per-particle work
(FLOPs, bytes), communication pattern, host-side shares, and the
*sustained efficiency* each GPU vendor achieves on it.  They are fitted so
the simulated runs land on the paper's reported aggregates:

* ~4-8 s/step at 150 M particles/GPU (totals in the 10-25 MJ range for the
  48-card, 100-step Figure 2 runs);
* GPU device share ~74-77 % of node energy on both systems;
* ``MomentumEnergy`` at ~25 % of GPU energy on CSCS-A100 but ~46 % on
  LUMI-G — the paper's headline Figure 3 contrast, realised here as much
  lower sustained-FLOP efficiency of the (less tuned) HIP kernels on the
  MI250X GCDs;
* the Figure 4/5 EDP response: compute-bound kernels stretch under
  down-clocking (no EDP benefit), memory-/latency-bound phases keep their
  duration and shed power (EDP −20..−30 %).

The numbers are *calibration*, not measurement; EXPERIMENTS.md records the
paper-vs-reproduced values they produce.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FunctionCost:
    """Per-particle work of one loop function (at ~100 neighbours)."""

    name: str
    #: FLOPs per particle per call.
    flops_per_particle: float
    #: Bytes moved to/from GPU memory per particle per call.
    bytes_per_particle: float
    #: Communication pattern: none | allreduce | domain (allgather +
    #: alltoallv + halo exchange).
    comm: str = "none"
    #: Payload for allreduce patterns (bytes).
    comm_payload_bytes: float = 8.0
    #: This rank's share of the node CPU while the function runs.
    cpu_share: float = 0.05
    #: This rank's share of node DRAM bandwidth while it runs.
    mem_share: float = 0.04
    #: Power of resident-but-stalled warps as a fraction of full compute
    #: power (SMs burn energy while waiting on memory).
    stall_power_floor: float = 0.55

    def __post_init__(self) -> None:
        if self.flops_per_particle < 0 or self.bytes_per_particle < 0:
            raise ConfigurationError(f"negative work for {self.name!r}")
        if self.comm not in ("none", "allreduce", "domain"):
            raise ConfigurationError(f"unknown comm pattern {self.comm!r}")


#: The calibrated inventory, keyed by the Figure 3/5 function names.
FUNCTION_COSTS: dict[str, FunctionCost] = {
    cost.name: cost
    for cost in (
        FunctionCost(
            name="DomainDecompAndSync",
            flops_per_particle=6.2e3,
            bytes_per_particle=5.2e3,
            comm="domain",
            cpu_share=0.16,
            mem_share=0.12,
            stall_power_floor=0.55,
        ),
        FunctionCost(
            name="FindNeighbors",
            flops_per_particle=3.2e3,
            bytes_per_particle=4.6e3,
            cpu_share=0.05,
            mem_share=0.05,
            stall_power_floor=0.42,
        ),
        FunctionCost(
            name="Density",
            flops_per_particle=5.6e3,
            bytes_per_particle=5.8e3,
            cpu_share=0.05,
            mem_share=0.05,
            stall_power_floor=0.42,
        ),
        FunctionCost(
            name="EquationOfState",
            flops_per_particle=22.0,
            bytes_per_particle=64.0,
            cpu_share=0.03,
            mem_share=0.02,
        ),
        FunctionCost(
            name="IADVelocityDivCurl",
            flops_per_particle=1.9e4,
            bytes_per_particle=6.4e3,
            cpu_share=0.05,
            mem_share=0.05,
        ),
        FunctionCost(
            name="MomentumEnergy",
            flops_per_particle=2.35e4,
            bytes_per_particle=6.8e3,
            cpu_share=0.05,
            mem_share=0.05,
        ),
        FunctionCost(
            name="Gravity",
            flops_per_particle=1.55e4,
            bytes_per_particle=3.2e3,
            cpu_share=0.06,
            mem_share=0.05,
        ),
        FunctionCost(
            name="TurbulenceDriving",
            flops_per_particle=1.9e3,
            bytes_per_particle=260.0,
            cpu_share=0.04,
            mem_share=0.03,
        ),
        FunctionCost(
            name="Timestep",
            flops_per_particle=6.0,
            bytes_per_particle=32.0,
            comm="allreduce",
            comm_payload_bytes=8.0,
            cpu_share=0.08,
            mem_share=0.02,
        ),
        FunctionCost(
            name="UpdateQuantities",
            flops_per_particle=36.0,
            bytes_per_particle=180.0,
            cpu_share=0.03,
            mem_share=0.03,
        ),
        FunctionCost(
            name="UpdateSmoothingLength",
            flops_per_particle=12.0,
            bytes_per_particle=24.0,
            cpu_share=0.03,
            mem_share=0.02,
        ),
        FunctionCost(
            name="EnergyConservation",
            flops_per_particle=14.0,
            bytes_per_particle=56.0,
            comm="allreduce",
            comm_payload_bytes=64.0,
            cpu_share=0.07,
            mem_share=0.02,
        ),
    )
}


@dataclass(frozen=True)
class VendorEfficiency:
    """Sustained fractions of peak for one GPU vendor on one function."""

    flop_efficiency: float
    bandwidth_efficiency: float

    def __post_init__(self) -> None:
        if not 0 < self.flop_efficiency <= 1 or not 0 < self.bandwidth_efficiency <= 1:
            raise ConfigurationError("efficiencies must be in (0, 1]")


#: Sustained efficiencies per vendor.  The AMD (HIP) compute kernels are
#: markedly less tuned than the CUDA ones — the paper's Figure 3 makes
#: exactly this point ("MomentumEnergy can further be optimized for AMD
#: GPUs"): despite 2.5x the per-GCD peak, sustained throughput is lower.
_DEFAULT_NVIDIA = VendorEfficiency(0.30, 0.82)
_DEFAULT_AMD = VendorEfficiency(0.15, 0.70)

VENDOR_EFFICIENCY: dict[str, dict[str, VendorEfficiency]] = {
    "nvidia": {
        "MomentumEnergy": VendorEfficiency(0.44, 0.82),
        "IADVelocityDivCurl": VendorEfficiency(0.36, 0.82),
        "Gravity": VendorEfficiency(0.30, 0.82),
        "Density": VendorEfficiency(0.30, 0.82),
        "FindNeighbors": VendorEfficiency(0.22, 0.78),
        "DomainDecompAndSync": VendorEfficiency(0.20, 0.70),
    },
    "amd": {
        "MomentumEnergy": VendorEfficiency(0.062, 0.70),
        "IADVelocityDivCurl": VendorEfficiency(0.085, 0.70),
        "Gravity": VendorEfficiency(0.075, 0.70),
        "Density": VendorEfficiency(0.14, 0.72),
        "FindNeighbors": VendorEfficiency(0.11, 0.68),
        "DomainDecompAndSync": VendorEfficiency(0.10, 0.62),
    },
}


def efficiency(vendor: str, function: str) -> VendorEfficiency:
    """Sustained efficiency of ``vendor`` on ``function``."""
    table = VENDOR_EFFICIENCY.get(vendor)
    if table is None:
        return _DEFAULT_NVIDIA  # generic devices behave like tuned code
    default = _DEFAULT_AMD if vendor == "amd" else _DEFAULT_NVIDIA
    return table.get(function, default)


#: Particles per GPU needed before kernels saturate device throughput;
#: below this, time becomes latency-bound (weakly frequency-sensitive) —
#: the mechanism behind the strong 200^3 EDP drop in Figure 4.
SATURATION_PARTICLES = 2.0e7

#: Power-level utilization when a kernel fully saturates compute issue.
PEAK_COMPUTE_UTILIZATION = 0.95

#: Power-level utilization of the memory system when bandwidth-saturated.
PEAK_MEMORY_UTILIZATION = 0.92

#: Redistribution fraction: share of particles crossing rank boundaries
#: per step (feeds the alltoallv volume of DomainDecompAndSync).
REDISTRIBUTION_FRACTION = 0.012

#: Bytes exchanged per halo particle (pos, vel, h, m, rho, u -> ~11 doubles).
HALO_BYTES_PER_PARTICLE = 88.0

#: Halo-layer thickness in interparticle spacings (2h at ~100 neighbours).
HALO_LAYER_SPACINGS = 2.9

#: Deterministic per-(rank, step, function) duration jitter (+- fraction).
DURATION_JITTER = 0.02

#: Host-side share of DomainDecompAndSync: tree construction, particle
#: exchange bookkeeping and barrier waits run on the CPU with the GPU
#: idle, as a fraction of the function's GPU kernel time.  This idle-GPU
#: window is a large part of why the function's EDP improves ~27 % under
#: down-clocking (Figure 5): its duration is clock-insensitive while the
#: idle clock-tree power falls.
DOMAIN_SYNC_HOST_FRACTION = 0.85
