"""Tests for the SPH physics kernels: density, EOS, IAD, momentum/energy,
timestep, integrator, smoothing length."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sph.box import Box
from repro.sph.initial_conditions import make_turbulence
from repro.sph.neighbors import find_neighbors
from repro.sph.particles import ParticleSet
from repro.sph.physics import (
    compute_density,
    compute_iad_and_divcurl,
    compute_momentum_energy,
    compute_timestep,
    energy_conservation,
    ideal_gas_eos,
    update_quantities,
    update_smoothing_length,
)
from repro.sph.physics.momentum_energy import balsara_factor


@pytest.fixture(scope="module")
def uniform_gas():
    """A settled uniform periodic gas with its pair list."""
    ps, box = make_turbulence(n_side=8, rho0=2.0, sound_speed=1.5, seed=7)
    pairs = find_neighbors(ps.pos, ps.h, box)
    ps.nc = pairs.neighbor_counts()
    return ps, box, pairs


class TestDensity:
    def test_uniform_gas_density(self, uniform_gas):
        ps, box, pairs = uniform_gas
        compute_density(ps, pairs)
        # Summation density of a jittered lattice stays within a few
        # percent of the true uniform density.
        assert np.median(ps.rho) == pytest.approx(2.0, rel=0.05)
        assert ps.rho.std() / ps.rho.mean() < 0.1

    def test_density_positive(self, uniform_gas):
        ps, box, pairs = uniform_gas
        compute_density(ps, pairs)
        assert np.all(ps.rho > 0)

    def test_isolated_particle_self_density(self):
        ps = ParticleSet(2)
        ps.pos = np.array([[0.0, 0.0, 0.0], [5.0, 0.0, 0.0]])
        ps.mass[:] = 1.0
        ps.h[:] = 0.5
        box = Box(length=20.0, periodic=False)
        pairs = find_neighbors(ps.pos, ps.h, box)
        compute_density(ps, pairs)
        expected = 1.0 / (np.pi * 0.5**3)  # m W(0, h)
        assert ps.rho[0] == pytest.approx(expected)

    def test_density_scales_with_mass(self, uniform_gas):
        ps, box, pairs = uniform_gas
        compute_density(ps, pairs)
        rho1 = ps.rho.copy()
        ps.mass = ps.mass * 3.0
        compute_density(ps, pairs)
        assert np.allclose(ps.rho, 3.0 * rho1)
        ps.mass = ps.mass / 3.0
        compute_density(ps, pairs)


class TestEos:
    def test_ideal_gas_relations(self):
        ps = ParticleSet(4)
        ps.rho = np.array([1.0, 2.0, 0.5, 1.5])
        ps.u = np.array([1.0, 0.5, 2.0, 1.0])
        ideal_gas_eos(ps, gamma=5.0 / 3.0)
        assert np.allclose(ps.p, (2.0 / 3.0) * ps.rho * ps.u)
        assert np.allclose(ps.c, np.sqrt((5.0 / 3.0) * (2.0 / 3.0) * ps.u))

    def test_invalid_gamma(self):
        with pytest.raises(SimulationError):
            ideal_gas_eos(ParticleSet(1), gamma=1.0)


class TestIad:
    def test_matrices_symmetric_positive(self, uniform_gas):
        ps, box, pairs = uniform_gas
        compute_density(ps, pairs)
        compute_iad_and_divcurl(ps, pairs)
        assert np.allclose(ps.c_iad, np.transpose(ps.c_iad, (0, 2, 1)), rtol=1e-8)
        # Diagonal entries of the inverse moment matrix are positive.
        diags = np.diagonal(ps.c_iad, axis1=1, axis2=2)
        assert np.all(diags > 0)

    def test_linear_velocity_field_divergence(self):
        """div(A x) = trace(A) recovered by the IAD estimate (interior)."""
        ps, box = make_turbulence(n_side=10, seed=11)
        grad = np.array(
            [[0.3, 0.1, 0.0], [0.0, -0.2, 0.05], [0.0, 0.0, 0.4]]
        )
        # Periodic wrap would break linearity, so evaluate on an open box
        # and check interior particles only.
        open_box = Box(length=1.0, periodic=False)
        ps.vel = ps.pos @ grad.T
        pairs = find_neighbors(ps.pos, ps.h, open_box)
        ps.nc = pairs.neighbor_counts()
        compute_density(ps, pairs)
        compute_iad_and_divcurl(ps, pairs)
        interior = np.all(np.abs(ps.pos) < 0.25, axis=1)
        measured = np.median(ps.div_v[interior])
        assert measured == pytest.approx(np.trace(grad), rel=0.1)

    def test_rigid_rotation_has_curl_no_divergence(self):
        ps, box = make_turbulence(n_side=10, seed=12)
        omega = np.array([0.0, 0.0, 1.0])
        open_box = Box(length=1.0, periodic=False)
        ps.vel = np.cross(omega, ps.pos)
        pairs = find_neighbors(ps.pos, ps.h, open_box)
        compute_density(ps, pairs)
        compute_iad_and_divcurl(ps, pairs)
        interior = np.all(np.abs(ps.pos) < 0.25, axis=1)
        assert np.median(np.abs(ps.div_v[interior])) < 0.05
        assert np.median(ps.curl_v[interior]) == pytest.approx(2.0, rel=0.1)


class TestMomentumEnergy:
    def prepare(self, seed=13):
        ps, box = make_turbulence(n_side=8, seed=seed)
        rng = np.random.default_rng(seed)
        ps.vel = rng.normal(0.0, 0.1, size=ps.vel.shape)
        pairs = find_neighbors(ps.pos, ps.h, box)
        ps.nc = pairs.neighbor_counts()
        compute_density(ps, pairs)
        ideal_gas_eos(ps)
        compute_iad_and_divcurl(ps, pairs)
        compute_momentum_energy(ps, pairs)
        return ps, box, pairs

    def test_momentum_rate_zero(self):
        """Pairwise antisymmetry: sum m a = 0 to round-off."""
        ps, _, _ = self.prepare()
        net = np.sum(ps.mass[:, None] * ps.acc, axis=0)
        scale = np.mean(np.abs(ps.mass[:, None] * ps.acc)) + 1e-300
        assert np.abs(net).max() < 1e-10 * max(scale, 1.0)

    def test_energy_rate_consistent(self):
        """d(E_kin)/dt + d(E_int)/dt = 0 for adiabatic flow."""
        ps, _, _ = self.prepare()
        dekin = np.sum(ps.mass * np.einsum("ia,ia->i", ps.vel, ps.acc))
        deint = np.sum(ps.mass * ps.du)
        scale = abs(dekin) + abs(deint) + 1e-300
        assert abs(dekin + deint) / scale < 0.05

    def test_compression_heats(self):
        """A radially converging flow produces du > 0."""
        ps, box = make_turbulence(n_side=8, seed=14)
        ps.vel = -0.5 * ps.pos  # uniform compression toward origin
        open_box = Box(length=1.0, periodic=False)
        pairs = find_neighbors(ps.pos, ps.h, open_box)
        compute_density(ps, pairs)
        ideal_gas_eos(ps)
        compute_iad_and_divcurl(ps, pairs)
        compute_momentum_energy(ps, pairs)
        interior = np.all(np.abs(ps.pos) < 0.25, axis=1)
        assert np.median(ps.du[interior]) > 0

    def test_viscosity_off_for_expansion(self):
        """Receding pairs contribute no artificial viscosity heating."""
        ps, box = make_turbulence(n_side=8, seed=15)
        ps.vel = 0.5 * ps.pos  # uniform expansion
        open_box = Box(length=1.0, periodic=False)
        pairs = find_neighbors(ps.pos, ps.h, open_box)
        compute_density(ps, pairs)
        ideal_gas_eos(ps)
        compute_iad_and_divcurl(ps, pairs)
        compute_momentum_energy(ps, pairs, av_alpha=0.0)
        du_noav = ps.du.copy()
        compute_momentum_energy(ps, pairs, av_alpha=1.0)
        # Pure expansion: AV changes nothing.
        assert np.allclose(ps.du, du_noav, atol=1e-10)

    def test_v_sig_at_least_sound_speed(self):
        ps, _, _ = self.prepare()
        assert np.all(ps.v_sig_max >= ps.c - 1e-12)

    def test_balsara_in_unit_interval(self):
        ps, _, _ = self.prepare()
        bal = balsara_factor(ps)
        assert np.all((bal >= 0) & (bal <= 1))


class TestTimestep:
    def test_requires_momentum_first(self):
        ps = ParticleSet(4)
        with pytest.raises(SimulationError):
            compute_timestep(ps)

    def test_courant_scaling(self):
        ps = ParticleSet(4)
        ps.h[:] = 0.1
        ps.acc[:] = 0.0
        ps.v_sig_max = np.full(4, 2.0)
        dt = compute_timestep(ps, courant=0.2)
        assert dt == pytest.approx(0.2 * 2 * 0.1 / 2.0)

    def test_acceleration_criterion(self):
        ps = ParticleSet(4)
        ps.h[:] = 1.0
        ps.v_sig_max = np.full(4, 1e-6)  # courant criterion huge
        ps.acc[:, 0] = 100.0
        dt = compute_timestep(ps, accel_coeff=0.25)
        assert dt == pytest.approx(0.25 * np.sqrt(1.0 / 100.0))

    def test_growth_cap(self):
        ps = ParticleSet(4)
        ps.h[:] = 1.0
        ps.v_sig_max = np.full(4, 0.001)
        ps.acc[:] = 1e-9
        dt = compute_timestep(ps, dt_prev=0.01)
        assert dt == pytest.approx(0.011)


class TestUpdateQuantities:
    def test_semi_implicit_euler(self):
        ps = ParticleSet(1)
        ps.vel[0] = [1.0, 0.0, 0.0]
        ps.acc[0] = [0.0, 2.0, 0.0]
        ps.u[0] = 1.0
        ps.du[0] = -0.5
        box = Box(length=100.0, periodic=False)
        update_quantities(ps, 0.1, box)
        assert np.allclose(ps.vel[0], [1.0, 0.2, 0.0])
        assert np.allclose(ps.pos[0], [0.1, 0.02, 0.0])
        assert ps.u[0] == pytest.approx(0.95)

    def test_internal_energy_floor(self):
        ps = ParticleSet(1)
        ps.u[0] = 0.01
        ps.du[0] = -10.0
        update_quantities(ps, 1.0, Box(length=10.0, periodic=False))
        assert ps.u[0] > 0

    def test_periodic_wrap(self):
        ps = ParticleSet(1)
        ps.pos[0] = [0.45, 0.0, 0.0]
        ps.vel[0] = [1.0, 0.0, 0.0]
        box = Box(length=1.0, periodic=True)
        update_quantities(ps, 0.2, box)
        assert box.contains(ps.pos).all()
        assert ps.pos[0, 0] == pytest.approx(-0.35)

    def test_zero_dt_rejected(self):
        with pytest.raises(SimulationError):
            update_quantities(ParticleSet(1), 0.0, Box(length=1.0))


class TestSmoothingLength:
    def test_moves_toward_target(self):
        ps = ParticleSet(2)
        ps.h[:] = 1.0
        ps.nc = np.array([800, 12])  # too many / too few neighbours
        update_smoothing_length(ps, n_target=100)
        assert ps.h[0] < 1.0
        assert ps.h[1] > 1.0

    def test_fixed_point_at_target(self):
        ps = ParticleSet(1)
        ps.h[:] = 0.7
        ps.nc = np.array([100])
        update_smoothing_length(ps, n_target=100)
        assert ps.h[0] == pytest.approx(0.7)

    def test_zero_count_grows(self):
        ps = ParticleSet(1)
        ps.h[:] = 0.5
        ps.nc = np.array([0])
        update_smoothing_length(ps, n_target=100)
        assert ps.h[0] > 0.5

    def test_h_max_clamp(self):
        ps = ParticleSet(1)
        ps.h[:] = 0.5
        ps.nc = np.array([1])
        update_smoothing_length(ps, n_target=100, h_max=0.6)
        assert ps.h[0] == 0.6

    def test_invalid_target(self):
        with pytest.raises(SimulationError):
            update_smoothing_length(ParticleSet(1), n_target=0)


class TestConservationTotals:
    def test_totals(self):
        ps = ParticleSet(2)
        ps.mass[:] = 2.0
        ps.vel[0] = [1.0, 0.0, 0.0]
        ps.u[:] = 0.5
        totals = energy_conservation(ps, potential=-3.0)
        assert totals.kinetic == pytest.approx(1.0)
        assert totals.internal == pytest.approx(2.0)
        assert totals.total_energy == pytest.approx(0.0)
        assert totals.momentum[0] == pytest.approx(2.0)
