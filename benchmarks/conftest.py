"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper, asserts its
qualitative shape, and writes the reproduced rows/series to
``benchmarks/results/<name>.txt`` so the output survives pytest's stdout
capture.

Benchmarks that end in ``_smoke.txt`` results come from the ``smoke``
variants: reduced-size versions of each benchmark that finish in seconds,
run in CI on every push (``make bench-smoke``), and are committed so the
determinism gate can diff freshly regenerated output against the
repository copy.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.hookimpl(tryfirst=True)
def pytest_collection_modifyitems(config, items):
    """Fail collection when a benchmark file contributes no smoke test.

    ``make bench-smoke`` runs ``-k smoke`` over all of ``benchmarks/``;
    a ``bench_*.py`` without a smoke variant would silently drop out of
    CI coverage.  This guard runs *before* ``-k`` deselection (hence
    ``tryfirst``), so it sees every collected benchmark and fails the
    run — loudly — instead.
    """
    missing = {}
    for item in items:
        path = Path(str(item.fspath))
        if path.parent != Path(__file__).parent:
            continue
        if not path.name.startswith("bench_"):
            continue
        has_smoke = missing.setdefault(path.name, False)
        missing[path.name] = has_smoke or "smoke" in item.name
    offenders = sorted(name for name, ok in missing.items() if not ok)
    if offenders:
        raise pytest.UsageError(
            "benchmark files without a smoke test (they would be silently "
            "skipped by `make bench-smoke`): " + ", ".join(offenders)
        )


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Persist one benchmark's reproduced table/series."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}")
