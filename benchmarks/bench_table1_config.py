"""Table 1: simulation and computing-system parameters.

Regenerates the paper's configuration inventory from the live config
objects and checks every row.
"""

from conftest import write_result

from repro.experiments import table1_text


def bench_table1(benchmark, results_dir):
    text = benchmark.pedantic(table1_text, rounds=1, iterations=1)
    for needle in (
        "Subsonic Turbulence: 150 million particles per GPU",
        "Evrard Collapse: 80 million particles per GPU",
        "-s 100 time-steps",
        "LUMI-G",
        "CSCS-A100",
        "miniHPC",
        "AMD MI250X",
        "NVIDIA A100-SXM4-80GB",
        "NVIDIA A100-PCIE-40GB",
        "1700 MHz",
        "1410 MHz",
    ):
        assert needle in text, f"Table 1 row missing: {needle}"
    write_result(results_dir, "table1_config", text)


def bench_smoke_table1(results_dir):
    # Table 1 is generated from static config; the smoke run is the full
    # table, re-checked against the load-bearing rows.
    text = table1_text()
    for needle in ("LUMI-G", "CSCS-A100", "miniHPC", "1410 MHz"):
        assert needle in text, f"Table 1 row missing: {needle}"
    write_result(results_dir, "table1_config_smoke", text)
