"""Contract tests for the compiled C fast path (:mod:`repro.sph.csolver`).

The compiled layer carries a two-tier numerical contract:

* the **neighbor filter** (both the flat-candidate filter and the fused
  cell walk) performs the identical IEEE operations in the identical
  order as the NumPy path, so its output is **bitwise equal**;
* the **physics kernels** reassociate reductions, so whole-step results
  agree with the NumPy engine to a few ULP (scaled deviation <= 1e-12
  over multiple steps).

All compiled tests skip cleanly when no C toolchain is available; the
``resolve()`` mode tests run everywhere.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sph import csolver
from repro.sph.box import Box
from repro.sph.driving import TurbulenceDriver
from repro.sph.initial_conditions import make_sedov, make_turbulence
from repro.sph.neighbors import (
    BufferPool,
    _csr_candidates,
    _csr_filtered_fused,
    _filter_candidates,
)
from repro.sph.physics.iad import _assemble_tau, _invert_tau
from repro.sph.propagator import Propagator

from tests.test_pair_cache import clone, make_case

LIB = csolver.load()

needs_lib = pytest.mark.skipif(
    LIB is None, reason="no C toolchain (or REPRO_SPH_CFAST disabled)"
)

CASES = ("turbulence", "sedov", "open")


def _search_radii(ps):
    return ps.h * 1.0  # the filter scales by SUPPORT_RADIUS internally


class TestResolve:
    def test_numpy_never_compiles(self):
        assert csolver.resolve("numpy") is None

    def test_bad_mode_rejected(self):
        with pytest.raises(SimulationError):
            csolver.resolve("fortran")

    def test_c_without_toolchain_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPH_CFAST", "0")
        with pytest.raises(SimulationError):
            csolver.resolve("c")

    def test_auto_falls_back_silently(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPH_CFAST", "0")
        assert csolver.resolve("auto") is None

    @needs_lib
    def test_c_resolves_to_library(self):
        assert csolver.resolve("c") is LIB
        assert csolver.resolve("auto") is LIB


class TestLabelGuard:
    def test_label_requires_compiled_filter(self):
        ps, box = make_case("turbulence")
        pool = BufferPool()
        h_search = _search_radii(ps)
        _, row, cand = _csr_candidates(ps.pos, h_search, box, pool)
        with pytest.raises(SimulationError):
            _filter_candidates(
                ps.pos, ps.h, box, row, cand, pool,
                exclude_self=True, out_prefix="t_",
                in_place=False, want_geometry=False,
                cfast=None, label=np.arange(len(ps.pos), dtype=np.int32),
            )


@needs_lib
class TestFilterBitwise:
    """The compiled exact filter is bitwise equal to the NumPy filter."""

    @pytest.mark.parametrize("case", CASES)
    def test_flat_filter_bitwise(self, case):
        ps, box = make_case(case)
        h_search = _search_radii(ps)
        ref_pool, c_pool = BufferPool(), BufferPool()

        _, row_n, cand_n = _csr_candidates(ps.pos, h_search, box, ref_pool)
        ref = _filter_candidates(
            ps.pos, ps.h, box, row_n.copy(), cand_n.copy(), ref_pool,
            exclude_self=True, out_prefix="r_", in_place=False,
            want_geometry=True, cfast=None,
        )
        _, row_c, cand_c = _csr_candidates(ps.pos, h_search, box, c_pool)
        got = _filter_candidates(
            ps.pos, ps.h, box, row_c.copy(), cand_c.copy(), c_pool,
            exclude_self=True, out_prefix="c_", in_place=False,
            want_geometry=True, cfast=LIB,
        )
        for r, g in zip(ref, got):
            assert np.array_equal(r, g)

    @pytest.mark.parametrize("case", CASES)
    def test_fused_cell_filter_bitwise(self, case):
        ps, box = make_case(case)
        h_search = _search_radii(ps)
        ref_pool, c_pool = BufferPool(), BufferPool()

        _, row_n, cand_n = _csr_candidates(ps.pos, h_search, box, ref_pool)
        ref = _filter_candidates(
            ps.pos, ps.h, box, row_n, cand_n, ref_pool,
            exclude_self=True, out_prefix="r_", in_place=False,
            want_geometry=True, cfast=None,
        )
        got = _csr_filtered_fused(
            ps.pos, h_search, box, c_pool, LIB,
            want_geometry=True, out_prefix="f_",
        )
        for r, g in zip(ref, got):
            assert np.array_equal(r, g)


@needs_lib
class TestTauInvert:
    def test_matches_numpy_regularized_inverse(self):
        rng = np.random.default_rng(11)
        entries = rng.normal(0.0, 1.0, size=(64, 6))
        # Make most matrices well-conditioned (diagonally dominant)...
        entries[:, 0] += 4.0
        entries[:, 3] += 4.0
        entries[:, 5] += 4.0
        # ...but force a few through the regularization branch.
        entries[:4] = 0.0
        entries[4, :] = [1.0, 0.0, 0.0, 1.0, 0.0, 0.0]  # rank-deficient

        got = csolver.tau_invert(LIB, entries)
        want = _invert_tau(_assemble_tau(entries, len(entries)))
        scale = np.max(np.abs(want))
        assert np.max(np.abs(got - want)) / scale < 1e-12


@needs_lib
class TestPropagatorEquivalence:
    """Whole-step physics through the C engine matches NumPy to <= 1e-12."""

    @staticmethod
    def _run(ps, box, accel, driver=None):
        prop = Propagator(box, driver=driver, accel=accel)
        from repro.sph.hooks import ProfilingHooks

        for _ in range(3):
            prop.step(ps, ProfilingHooks())
        return ps

    @staticmethod
    def _assert_close(a, b):
        for field in ("pos", "vel", "u", "rho", "h", "acc", "du"):
            x = getattr(a, field)
            y = getattr(b, field)
            scale = max(np.max(np.abs(x)), 1e-300)
            assert np.max(np.abs(x - y)) / scale < 1e-12, field

    def test_turbulence_with_driver(self):
        ps, box = make_turbulence(n_side=6, seed=2)
        ps_n = self._run(clone(ps), box, "numpy", TurbulenceDriver(box, seed=1))
        ps_c = self._run(clone(ps), box, "c", TurbulenceDriver(box, seed=1))
        self._assert_close(ps_n, ps_c)

    def test_sedov(self):
        ps, box = make_sedov(n_side=6, seed=3)
        ps_n = self._run(clone(ps), box, "numpy")
        ps_c = self._run(clone(ps), box, "auto")
        self._assert_close(ps_n, ps_c)
