"""Tests for the AST-based energy-accounting lint."""

from pathlib import Path

from repro.audit.lint import RULES, LintFinding, lint_paths, lint_source

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def rules_of(source):
    return [f.rule for f in lint_source(source)]


class TestWallclockRule:
    def test_time_time(self):
        assert rules_of("import time\nt = time.time()\n") == ["wallclock"]

    def test_perf_counter(self):
        assert rules_of("import time\nt = time.perf_counter()\n") == [
            "wallclock"
        ]

    def test_datetime_now(self):
        assert rules_of(
            "from datetime import datetime\nd = datetime.now()\n"
        ) == ["wallclock"]

    def test_virtual_clock_untouched(self):
        assert rules_of("t = clock.now\nclock.advance(1.0)\n") == []

    def test_unrelated_attribute_named_time(self):
        # ``row.time()`` on a non-time object must not be flagged... but a
        # two-part dotted match cannot tell; the rule keys on the module
        # name, so only ``time.time()`` exactly is caught.
        assert rules_of("value = record.elapsed_time()\n") == []


class TestRawRandomRule:
    def test_random_module(self):
        assert rules_of("import random\nx = random.random()\n") == [
            "raw-random"
        ]

    def test_random_choice(self):
        assert rules_of("import random\nx = random.choice(items)\n") == [
            "raw-random"
        ]

    def test_numpy_legacy_global(self):
        assert rules_of("import numpy as np\nx = np.random.rand(3)\n") == [
            "raw-random"
        ]

    def test_seeded_default_rng_allowed(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n"
            "x = rng.normal()\n"
        )
        assert rules_of(src) == []

    def test_generator_methods_allowed(self):
        assert rules_of("x = np.random.Generator(bitgen)\n") == []


class TestFloatEnergyAccumulationRule:
    def test_watts_times_dt(self):
        src = "joules = 0.0\nfor w in s:\n    joules += watts * dt\n"
        assert rules_of(src) == ["float-energy-accumulation"]

    def test_energy_named_target(self):
        src = "self.energy_j += 0.5 * (w_prev + watts) * (t1 - t0)\n"
        assert rules_of(src) == ["float-energy-accumulation"]

    def test_counter_difference_allowed(self):
        assert rules_of("total_joules = j1 - j0\n") == []

    def test_non_power_accumulation_allowed(self):
        # Summing joule deltas (not power x time) stays legal.
        assert rules_of("joules += delta_joules\n") == []


class TestUnguardedWrapSubtractionRule:
    def test_raw_uj_difference(self):
        assert rules_of("delta = raw_uj - last_raw_uj\n") == [
            "unguarded-wrap-subtraction"
        ]

    def test_energy_uj_difference(self):
        assert rules_of("d = current.energy_uj - previous.energy_uj\n") == [
            "unguarded-wrap-subtraction"
        ]

    def test_inside_unwrap_allowed(self):
        src = (
            "def unwrap(prev_raw_uj, cur_raw_uj):\n"
            "    return cur_raw_uj - prev_raw_uj\n"
        )
        assert rules_of(src) == []

    def test_unrelated_subtraction_allowed(self):
        assert rules_of("delta = t1 - t0\n") == []


class TestSuppression:
    def test_allow_comment_waives_named_rule(self):
        src = "import time\nt = time.time()  # audit-lint: allow[wallclock] x\n"
        assert rules_of(src) == []

    def test_allow_comment_is_rule_specific(self):
        # A wallclock waiver does not hide a random call on the same line.
        src = (
            "import time, random\n"
            "x = random.random()  # audit-lint: allow[wallclock]\n"
        )
        assert rules_of(src) == ["raw-random"]


class TestHarness:
    def test_rule_names_are_stable(self):
        assert RULES == (
            "wallclock",
            "raw-random",
            "float-energy-accumulation",
            "unguarded-wrap-subtraction",
        )

    def test_findings_sorted_and_rendered(self):
        src = "import time\nb = time.time()\na = time.monotonic()\n"
        findings = lint_source(src, "mod.py")
        assert [f.line for f in findings] == [2, 3]
        assert findings[0].render().startswith("mod.py:2: [wallclock]")

    def test_syntax_error_reported_not_raised(self):
        findings = lint_source("def broken(:\n", "bad.py")
        assert findings and "unparseable" in findings[0].message

    def test_lint_paths_over_files_and_dirs(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        dirty = tmp_path / "pkg" / "dirty.py"
        dirty.parent.mkdir()
        dirty.write_text("import time\nt = time.time()\n")
        findings = lint_paths([tmp_path])
        assert [f.rule for f in findings] == ["wallclock"]
        assert isinstance(findings[0], LintFinding)
        assert findings[0].path.endswith("dirty.py")

    def test_repo_source_tree_is_clean(self):
        findings = lint_paths([SRC_ROOT])
        assert findings == [], "\n".join(f.render() for f in findings)
