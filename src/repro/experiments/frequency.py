"""Figures 4 and 5: the effect of GPU frequency down-scaling on EDP.

Run on miniHPC (the only Table 1 system that lets users set GPU
frequencies), Subsonic Turbulence, 91 M particles per GPU (450^3) down to
8 M (200^3), sweeping the compute clock from 1410 MHz to 1005 MHz.

Both figures are *campaigns*: the sweep is declared as a
:class:`~repro.campaign.spec.CampaignSpec`, expanded to independent run
keys, executed on the shared campaign engine (optionally sharded across
worker processes and backed by the content-addressed result cache), and
merged back into the same structures the serial implementations always
returned.  ``workers=1`` without a store is the serial degenerate case.
"""

from __future__ import annotations

from repro.campaign.executor import ProgressFn, execute
from repro.campaign.merge import merge_figure4, merge_figure5
from repro.campaign.spec import CampaignSpec, expand
from repro.campaign.store import ResultStore
from repro.config import (
    A100_SWEEP_FREQS_MHZ,
    MINIHPC,
    SUBSONIC_TURBULENCE,
    SystemConfig,
    TestCaseConfig,
)

#: Particle counts per GPU of Figure 4 (cube sides 200..450).
FIGURE4_CUBE_SIDES = (200, 250, 300, 350, 400, 450)

#: Baseline compute frequency (MHz) the EDPs are normalized to.
BASELINE_MHZ = 1410.0


def particles_of_side(side: int) -> float:
    """Particles per GPU for a ``side^3`` cube."""
    return float(side) ** 3


def figure4_spec(
    cube_sides: tuple[int, ...] = FIGURE4_CUBE_SIDES,
    freqs_mhz: tuple[float, ...] = tuple(float(f) for f in A100_SWEEP_FREQS_MHZ),
    system: SystemConfig = MINIHPC,
    test_case: TestCaseConfig = SUBSONIC_TURBULENCE,
    num_steps: int | None = None,
    seed: int = 0,
) -> CampaignSpec:
    """The Figure 4 sweep as a declarative campaign."""
    return CampaignSpec(
        name="fig4",
        systems=(system.name,),
        test_cases=(test_case.name,),
        card_counts=(system.cards_per_node,),
        freqs_mhz=tuple(float(f) for f in freqs_mhz),
        particles_per_rank=tuple(particles_of_side(s) for s in cube_sides),
        num_steps=num_steps,
        seeds=(seed,),
    )


def figure4_series(
    cube_sides: tuple[int, ...] = FIGURE4_CUBE_SIDES,
    freqs_mhz: tuple[float, ...] = tuple(float(f) for f in A100_SWEEP_FREQS_MHZ),
    system: SystemConfig = MINIHPC,
    test_case: TestCaseConfig = SUBSONIC_TURBULENCE,
    num_steps: int | None = None,
    seed: int = 0,
    workers: int = 1,
    store: ResultStore | None = None,
    progress: ProgressFn | None = None,
) -> dict[int, dict[float, float]]:
    """Normalized whole-run EDP per cube side per frequency.

    Returns ``{side: {MHz: EDP / EDP(1410 MHz)}}``.
    """
    spec = figure4_spec(
        cube_sides=cube_sides,
        freqs_mhz=freqs_mhz,
        system=system,
        test_case=test_case,
        num_steps=num_steps,
        seed=seed,
    )
    results, _ = execute(
        expand(spec), store=store, workers=workers, progress=progress
    )
    return merge_figure4(results, BASELINE_MHZ)


def figure5_spec(
    freqs_mhz: tuple[float, ...] = tuple(float(f) for f in A100_SWEEP_FREQS_MHZ),
    system: SystemConfig = MINIHPC,
    test_case: TestCaseConfig = SUBSONIC_TURBULENCE,
    cube_side: int = 450,
    num_steps: int | None = None,
    seed: int = 0,
) -> CampaignSpec:
    """The Figure 5 sweep as a declarative campaign."""
    return CampaignSpec(
        name="fig5",
        systems=(system.name,),
        test_cases=(test_case.name,),
        card_counts=(system.cards_per_node,),
        freqs_mhz=tuple(float(f) for f in freqs_mhz),
        particles_per_rank=(particles_of_side(cube_side),),
        num_steps=num_steps,
        seeds=(seed,),
    )


def figure5_series(
    freqs_mhz: tuple[float, ...] = tuple(float(f) for f in A100_SWEEP_FREQS_MHZ),
    system: SystemConfig = MINIHPC,
    test_case: TestCaseConfig = SUBSONIC_TURBULENCE,
    cube_side: int = 450,
    num_steps: int | None = None,
    seed: int = 0,
    workers: int = 1,
    store: ResultStore | None = None,
    progress: ProgressFn | None = None,
) -> dict[str, dict[float, float]]:
    """Normalized per-function EDP at 450^3 particles per GPU.

    Returns ``{function: {MHz: EDP / EDP(1410 MHz)}}``.
    """
    spec = figure5_spec(
        freqs_mhz=freqs_mhz,
        system=system,
        test_case=test_case,
        cube_side=cube_side,
        num_steps=num_steps,
        seed=seed,
    )
    results, _ = execute(
        expand(spec), store=store, workers=workers, progress=progress
    )
    return merge_figure5(results, BASELINE_MHZ)
