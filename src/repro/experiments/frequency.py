"""Figures 4 and 5: the effect of GPU frequency down-scaling on EDP.

Run on miniHPC (the only Table 1 system that lets users set GPU
frequencies), Subsonic Turbulence, 91 M particles per GPU (450^3) down to
8 M (200^3), sweeping the compute clock from 1410 MHz to 1005 MHz.
"""

from __future__ import annotations

from repro.analysis.edp import function_edp, normalized_edp_series, run_edp
from repro.config import (
    A100_SWEEP_FREQS_MHZ,
    MINIHPC,
    SUBSONIC_TURBULENCE,
    SystemConfig,
    TestCaseConfig,
)
from repro.experiments.runner import run_scaled_experiment

#: Particle counts per GPU of Figure 4 (cube sides 200..450).
FIGURE4_CUBE_SIDES = (200, 250, 300, 350, 400, 450)

#: Baseline compute frequency (MHz) the EDPs are normalized to.
BASELINE_MHZ = 1410.0


def particles_of_side(side: int) -> float:
    """Particles per GPU for a ``side^3`` cube."""
    return float(side) ** 3


def figure4_series(
    cube_sides: tuple[int, ...] = FIGURE4_CUBE_SIDES,
    freqs_mhz: tuple[float, ...] = tuple(float(f) for f in A100_SWEEP_FREQS_MHZ),
    system: SystemConfig = MINIHPC,
    test_case: TestCaseConfig = SUBSONIC_TURBULENCE,
    num_steps: int | None = None,
    seed: int = 0,
) -> dict[int, dict[float, float]]:
    """Normalized whole-run EDP per cube side per frequency.

    Returns ``{side: {MHz: EDP / EDP(1410 MHz)}}``.
    """
    out: dict[int, dict[float, float]] = {}
    for side in cube_sides:
        by_freq: dict[float, float] = {}
        for freq in freqs_mhz:
            result = run_scaled_experiment(
                system,
                test_case,
                num_cards=system.cards_per_node,
                gpu_freq_mhz=freq,
                num_steps=num_steps,
                particles_per_rank=particles_of_side(side),
                seed=seed,
            )
            by_freq[freq] = run_edp(result.run)
        out[side] = normalized_edp_series(by_freq, BASELINE_MHZ)
    return out


def figure5_series(
    freqs_mhz: tuple[float, ...] = tuple(float(f) for f in A100_SWEEP_FREQS_MHZ),
    system: SystemConfig = MINIHPC,
    test_case: TestCaseConfig = SUBSONIC_TURBULENCE,
    cube_side: int = 450,
    num_steps: int | None = None,
    seed: int = 0,
) -> dict[str, dict[float, float]]:
    """Normalized per-function EDP at 450^3 particles per GPU.

    Returns ``{function: {MHz: EDP / EDP(1410 MHz)}}``.
    """
    per_freq: dict[float, dict[str, float]] = {}
    for freq in freqs_mhz:
        result = run_scaled_experiment(
            system,
            test_case,
            num_cards=system.cards_per_node,
            gpu_freq_mhz=freq,
            num_steps=num_steps,
            particles_per_rank=particles_of_side(cube_side),
            seed=seed,
        )
        per_freq[freq] = function_edp(result.run)

    functions = per_freq[freqs_mhz[0]].keys()
    out: dict[str, dict[float, float]] = {}
    for fn in functions:
        series = {freq: per_freq[freq][fn] for freq in freqs_mhz}
        if series[BASELINE_MHZ] <= 0:
            # Sub-resolution functions (sensor quantization reports zero
            # energy in short runs) cannot be normalized; skip them, as
            # the paper's Figure 5 plots only the time-consuming ones.
            continue
        out[fn] = normalized_edp_series(series, BASELINE_MHZ)
    return out
