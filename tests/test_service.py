"""Telemetry service tests: protocol, tenants, loopback server, collector.

The deterministic core (framing, validation, queue accounting) is tested
synchronously; the asyncio server is exercised over real loopback
sockets through :class:`ServiceThread`, exactly as the CLI and the load
harness use it.
"""

import json

import numpy as np
import pytest

from repro.config import CSCS_A100, OBSERVABILITY_CASES
from repro.errors import ConfigurationError
from repro.experiments.runner import run_scaled_experiment
from repro.instrumentation.reporting import service_qc_summary
from repro.service import (
    LoadSpec,
    ServiceClient,
    ServiceCollector,
    ServiceThread,
    SyntheticSource,
    Tenant,
    TenantConfig,
    TenantRegistry,
    endpoint_tenant,
    http_get_json,
    http_get_text,
    http_post_json,
    parse_endpoint,
    run_load,
)
from repro.service import protocol
from repro.service.protocol import ProtocolError
from repro.timeseries import TimeseriesCollector


def _columns(n=8, t0=0.0, watts=100.0):
    t = [t0 + 0.1 * k for k in range(n)]
    return {
        "t": t,
        "watts": [watts] * n,
        "joules": [watts * (x - t[0]) for x in t],
    }


def _parsed(n=8, t0=0.0):
    return protocol.parse_batch(
        protocol.batch_message(0, {"p": _columns(n, t0)})
    )[1]


class TestProtocol:
    def test_roundtrip_single_frame(self):
        message = protocol.hello_message("acme", "test", "shed")
        decoder = protocol.FrameDecoder()
        out = decoder.feed(protocol.encode_frame(message))
        assert out == [message]
        assert decoder.pending_bytes == 0

    def test_roundtrip_byte_by_byte(self):
        messages = [
            protocol.hello_message("a"),
            protocol.batch_message(3, {"p": _columns(4)}),
            protocol.sync_message(),
        ]
        wire = b"".join(protocol.encode_frame(m) for m in messages)
        decoder = protocol.FrameDecoder()
        out = []
        for i in range(len(wire)):
            out.extend(decoder.feed(wire[i : i + 1]))
        assert out == messages

    def test_oversized_frame_rejected_before_buffering(self):
        decoder = protocol.FrameDecoder()
        header = (protocol.MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError, match="ceiling"):
            decoder.feed(header)

    def test_payload_must_be_object_with_kind(self):
        bad = json.dumps([1, 2]).encode()
        frame = len(bad).to_bytes(4, "big") + bad
        with pytest.raises(ProtocolError, match="kind"):
            protocol.FrameDecoder().feed(frame)

    def test_payload_must_be_json(self):
        frame = len(b"nope").to_bytes(4, "big") + b"nope"
        with pytest.raises(ProtocolError, match="not JSON"):
            protocol.FrameDecoder().feed(frame)

    def test_hello_validation(self):
        with pytest.raises(ProtocolError, match="backpressure"):
            protocol.hello_message("a", backpressure="drop")
        with pytest.raises(ProtocolError, match="tenant"):
            protocol.hello_message("")

    def test_batch_columns_quality_defaults_ok(self):
        t, watts, joules, quality = protocol.batch_columns(_columns(4))
        assert len(t) == 4
        assert quality.dtype == np.uint8
        assert not quality.any()

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda c: c.pop("watts"), "malformed"),
            (lambda c: c["watts"].pop(), "equal length"),
            (lambda c: c.update(t=[]), "equal length"),
            (lambda c: c.update(t=list(reversed(c["t"]))), "non-decreasing"),
            (lambda c: c.update(t=c["t"], watts=["x"] * 8), "malformed"),
        ],
    )
    def test_batch_columns_rejections(self, mutate, match):
        cols = _columns()
        mutate(cols)
        with pytest.raises(ProtocolError, match=match):
            protocol.batch_columns(cols)

    def test_batch_with_no_samples_rejected(self):
        empty = {"t": [], "watts": [], "joules": []}
        with pytest.raises(ProtocolError, match="no samples"):
            protocol.batch_columns(empty)

    def test_parse_batch_rejections(self):
        with pytest.raises(ProtocolError, match="expected a batch"):
            protocol.parse_batch(protocol.sync_message())
        with pytest.raises(ProtocolError, match="node"):
            protocol.parse_batch({"kind": "batch", "channels": {"p": _columns()}})
        with pytest.raises(ProtocolError, match="no channels"):
            protocol.parse_batch({"kind": "batch", "node": 0, "channels": {}})

    def test_parse_endpoint(self):
        assert parse_endpoint("tcp://10.0.0.1:9000") == ("10.0.0.1", 9000)
        assert parse_endpoint("http://localhost:81/") == ("localhost", 81)
        assert parse_endpoint(":7777") == ("127.0.0.1", 7777)
        assert parse_endpoint("telemetry://10.0.0.1:9000/demo") == (
            "10.0.0.1",
            9000,
        )
        with pytest.raises(ConfigurationError):
            parse_endpoint("no-port")
        with pytest.raises(ConfigurationError):
            parse_endpoint("host:abc")

    def test_endpoint_tenant(self):
        assert endpoint_tenant("telemetry://10.0.0.1:9000/demo") == "demo"
        assert endpoint_tenant("tcp://10.0.0.1:9000") is None
        assert endpoint_tenant("host:9000/") is None


class TestTenantAccounting:
    def test_offer_drain_identity(self):
        tenant = Tenant("a", TenantConfig(max_pending_samples=100))
        assert tenant.offer(0, _parsed(8))
        assert tenant.pending_samples == 8
        assert tenant.drain() == 8
        c = tenant.counters
        assert (c.samples_offered, c.samples_ingested) == (8, 8)
        assert c.samples_shed == c.samples_rejected == 0

    def test_shed_with_accounting_on_overflow(self):
        tenant = Tenant("a", TenantConfig(max_pending_samples=20))
        assert tenant.offer(0, _parsed(16))
        assert tenant.saturated is False
        # 16 + 16 > 20: the second batch is shed, with accounting.
        assert not tenant.offer(0, _parsed(16, t0=10.0))
        c = tenant.counters
        assert c.samples_offered == 32
        assert c.samples_shed == 16
        assert c.batches_shed == 1
        # Identity: offered == ingested + pending + shed + rejected.
        assert c.samples_offered == (
            c.samples_ingested
            + tenant.pending_samples
            + c.samples_shed
            + c.samples_rejected
        )

    def test_regressed_timestamps_rejected_on_drain(self):
        tenant = Tenant("a")
        tenant.offer(0, _parsed(8, t0=100.0))
        tenant.offer(0, _parsed(8, t0=0.0))  # regresses: store will refuse
        tenant.drain()
        c = tenant.counters
        assert c.samples_ingested == 8
        assert c.samples_rejected == 8
        assert c.rejection_reasons  # the exception type is recorded

    def test_reject_records_reason(self):
        tenant = Tenant("a")
        tenant.reject("bad columns", 5)
        tenant.reject("bad columns", 3)
        assert tenant.counters.rejection_reasons == {"bad columns": 2}
        assert tenant.counters.samples_rejected == 8

    def test_empty_tenant_name_rejected(self):
        with pytest.raises(ConfigurationError):
            Tenant("")

    def test_nonpositive_queue_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            TenantConfig(max_pending_samples=0)

    def test_memory_cap_holds_under_sustained_ingest(self):
        config = TenantConfig(
            raw_capacity=256,
            bucket_size=8,
            bucket_capacity=64,
            lttb_capacity=32,
            max_pending_samples=10_000,
        )
        tenant = Tenant("a", config)
        for b in range(40):
            tenant.offer(0, _parsed(100, t0=100.0 * b))
            tenant.drain()
        snap = tenant.snapshot()
        assert snap["store_bytes"] <= snap["memory_cap_bytes"]
        assert snap["samples_ingested"] == 4000

    def test_registry_summary_is_deterministic(self):
        def build():
            registry = TenantRegistry()
            for name in ("beta", "alpha"):
                tenant = registry.get_or_create(name)
                tenant.offer(0, _parsed(8))
                tenant.drain()
            return registry.accounting_summary()

        first, second = build(), build()
        assert first == second
        lines = first.splitlines()
        assert "tenant" in lines[0] and "bytes<=cap" in lines[0]
        # Tenants listed sorted, not in creation order.
        assert lines[1].split()[0] == "alpha"
        assert lines[2].split()[0] == "beta"

    def test_registry_unknown_tenant(self):
        with pytest.raises(ConfigurationError, match="unknown tenant"):
            TenantRegistry().get("ghost")


class TestServiceQcSummary:
    def test_ok_verdict(self):
        tenant = Tenant("a")
        tenant.offer(0, _parsed(8))
        tenant.drain()
        text = service_qc_summary([tenant.snapshot()])
        assert text.startswith("Service QC: ok")
        assert "8 of 8" in text

    def test_degraded_lists_tenants(self):
        tenant = Tenant("a", TenantConfig(max_pending_samples=10))
        tenant.offer(0, _parsed(8))
        tenant.offer(0, _parsed(8, t0=10.0))  # shed
        tenant.drain()
        text = service_qc_summary([tenant.snapshot()])
        assert "DEGRADED" in text
        assert "a: shed 8" in text

    def test_watch_drops_reported(self):
        tenant = Tenant("a")
        text = service_qc_summary(
            [tenant.snapshot()], {"a": 5}, {"a": 2}
        )
        assert "2 frames dropped" in text

    def test_no_tenants(self):
        assert service_qc_summary([]) == "Service QC: no tenants"


@pytest.fixture(scope="module")
def service():
    """One loopback service shared by the HTTP/stream round-trip tests."""
    with ServiceThread(tenant_config=TenantConfig()) as handle:
        yield handle


class TestServerRoundTrip:
    def test_publish_sync_query_energy(self, service):
        with ServiceClient(service.host, service.port, "rt") as client:
            client.publish(7, {"cpu": _columns(50, watts=100.0)})
            ack = client.sync()
        assert ack["samples_ingested"] == 50
        energy = http_get_json(
            service.host,
            service.http_port,
            "/query/energy?tenant=rt&node=7&channel=cpu&t0=0&t1=4.9",
        )
        # The store interpolates cumulative-joules knots: exact energy.
        assert energy["joules"] == pytest.approx(490.0, abs=1e-9)

    def test_range_query_returns_columns(self, service):
        with ServiceClient(service.host, service.port, "rq") as client:
            client.publish(1, {"gpu": _columns(20, watts=50.0)})
            client.sync()
        out = http_get_json(
            service.host,
            service.http_port,
            "/query/range?tenant=rq&node=1&channel=gpu",
        )
        assert out["n"] == 20
        assert len(out["t"]) == len(out["watts"]) == len(out["joules"]) == 20
        assert set(out["tier"]) <= {0, 1, 2}

    def test_healthz_and_404(self, service):
        assert http_get_text(service.host, service.http_port, "/healthz") == "ok"
        from repro.service.client import http_request

        status, _ = http_request(service.host, service.http_port, "/nope")
        assert status == 404

    def test_unknown_tenant_is_400(self, service):
        from repro.service.client import http_request

        status, body = http_request(
            service.host,
            service.http_port,
            "/query/range?tenant=ghost&node=0&channel=x",
        )
        assert status == 400
        assert b"unknown tenant" in body

    def test_http_ingest_single_list_and_batches(self, service):
        host, port = service.host, service.http_port
        batch = protocol.batch_message(0, {"p": _columns(4)})
        out = http_post_json(host, port, "/ingest?tenant=hi", batch)
        assert out["accepted"] == 1
        out = http_post_json(
            host,
            port,
            "/ingest?tenant=hi",
            [protocol.batch_message(0, {"p": _columns(4, t0=10.0)})],
        )
        assert out["accepted"] == 1
        out = http_post_json(
            host,
            port,
            "/ingest?tenant=hi",
            {"batches": [protocol.batch_message(0, {"p": _columns(4, t0=20.0)})]},
        )
        assert out["accepted"] == 1
        assert out["samples_ingested"] == 12

    def test_http_ingest_malformed_batch_accounted(self, service):
        out = http_post_json(
            service.host,
            service.http_port,
            "/ingest?tenant=bad",
            {"kind": "batch", "node": 0, "channels": {"p": {"t": [1, 0]}}},
        )
        assert out["rejected"] == 1
        assert out["batches_rejected"] == 1

    def test_tenants_endpoint_lists_sorted(self, service):
        out = http_get_json(service.host, service.http_port, "/tenants")
        names = [s["tenant"] for s in out["tenants"]]
        assert names == sorted(names)
        assert "watch_frames_sent" in out

    def test_wrong_protocol_version_gets_error_frame(self, service):
        import socket as socketlib

        hello = protocol.hello_message("v")
        hello["protocol"] = 999
        sock = socketlib.create_connection(
            (service.host, service.port), timeout=10
        )
        try:
            sock.sendall(protocol.encode_frame(hello))
            decoder = protocol.FrameDecoder()
            frames = []
            while not frames:
                frames = decoder.feed(sock.recv(65536))
            assert frames[0]["kind"] == "error"
            assert "protocol version" in frames[0]["message"]
        finally:
            sock.close()

    def test_wait_mode_never_sheds(self):
        # A queue bound far smaller than the published volume: wait-mode
        # backpressure must absorb it all without shedding a sample.
        config = TenantConfig(max_pending_samples=64)
        with ServiceThread(tenant_config=config) as handle:
            with ServiceClient(
                handle.host, handle.port, "w", backpressure="wait"
            ) as client:
                for b in range(20):
                    client.publish(0, {"p": _columns(32, t0=3.2 * b)})
                ack = client.sync()
        assert ack["samples_shed"] == 0
        assert ack["samples_ingested"] == 640

    def test_wait_mode_never_sheds_on_straddling_batches(self):
        # Regression: a batch that straddles the remaining queue space
        # (32 does not divide 50, so saturation hits mid-batch) must
        # wait for room, not shed — and a single batch larger than the
        # whole queue bound must still land losslessly once the queue
        # drains empty.
        config = TenantConfig(max_pending_samples=50)
        with ServiceThread(tenant_config=config) as handle:
            with ServiceClient(
                handle.host, handle.port, "w2", backpressure="wait"
            ) as client:
                for b in range(10):
                    client.publish(0, {"p": _columns(32, t0=3.2 * b)})
                client.publish(0, {"p": _columns(80, t0=32.0)})
                ack = client.sync()
        assert ack["samples_shed"] == 0
        assert ack["samples_ingested"] == 10 * 32 + 80

    def test_malformed_query_params_are_400(self, service):
        from repro.service.client import http_request

        with ServiceClient(service.host, service.port, "qp") as client:
            client.publish(0, {"p": _columns(4)})
            client.sync()
        status, body = http_request(
            service.host,
            service.http_port,
            "/query/range?tenant=qp&node=0&channel=p&t0=abc",
        )
        assert status == 400
        assert b"t0" in body
        status, body = http_request(
            service.host,
            service.http_port,
            "/watch?tenant=qp&every=abc",
        )
        assert status == 400
        assert b"every" in body

    def test_drainer_survives_watch_frame_failure(self):
        # A live-frame rendering failure must not kill the drainer:
        # ingest keeps being applied and the error is recorded.
        import asyncio

        from repro.service.server import TelemetryService, _Watcher

        async def run():
            service = TelemetryService()
            await service.start()
            try:
                tenant = service.registry.get_or_create("t")
                service._watchers["t"] = [_Watcher("t", 1, 8)]

                def boom(tenant, width):
                    raise RuntimeError("render exploded")

                service._render_frame = boom
                for b in range(2):
                    tenant.offer(0, _parsed(8, t0=10.0 * b))
                    service._kick()
                    while tenant.pending_batches:
                        await asyncio.sleep(0.01)
            finally:
                await service.stop()
            return service, tenant

        service, tenant = asyncio.run(run())
        assert tenant.counters.samples_ingested == 16
        assert service.drain_errors >= 1
        assert "render exploded" in service.last_drain_error


class TestPrometheusScrape:
    def test_metrics_endpoint_multi_tenant(self, service):
        with ServiceClient(service.host, service.port, "promA") as client:
            client.publish(0, {"node": _columns(5)})
            client.sync()
        with ServiceClient(service.host, service.port, "promB") as client:
            client.publish(0, {"node": _columns(5)})
            client.sync()
        text = http_get_text(service.host, service.http_port, "/metrics")
        assert 'tenant="promA"' in text and 'tenant="promB"' in text
        # One HELP/TYPE header per metric family, no matter how many
        # tenants export it.
        assert text.count("# TYPE repro_power_watts gauge") == 1
        assert text.count("# HELP repro_power_watts") == 1
        assert text.count("# TYPE repro_energy_joules_total counter") == 1


class TestServiceCollectorZeroPerturbation:
    """The publisher must not move a single measured joule."""

    CASE = OBSERVABILITY_CASES["Sedov Blast"]

    def _run(self, collector=None):
        return run_scaled_experiment(
            CSCS_A100,
            self.CASE,
            4,
            num_steps=6,
            timeseries=True,
            collector=collector,
        )

    def test_publisher_on_off_bit_identical(self, tmp_path):
        baseline = self._run()
        with ServiceThread() as handle:
            client = ServiceClient(handle.host, handle.port, "exp")
            collector = ServiceCollector(client, batch_ticks=16)
            published = self._run(collector=collector)
            ack = collector.close()

        # Per-region energies and every other measured quantity agree
        # bit-for-bit: compare the serialized measurement records.
        path_a, path_b = tmp_path / "a.json", tmp_path / "b.json"
        baseline.run.write(path_a)
        published.run.write(path_b)
        assert path_a.read_bytes() == path_b.read_bytes()

        # The local stores retained identical telemetry too.
        store_a = baseline.timeseries.store
        store_b = published.timeseries.store
        assert store_a.num_samples == store_b.num_samples
        for node, name in store_a.channels():
            sa = store_a.channel(node, name).points()
            sb = store_b.channel(node, name).points()
            np.testing.assert_array_equal(sa["t"], sb["t"])
            np.testing.assert_array_equal(sa["joules"], sb["joules"])

        # And the service ingested everything the collector retained.
        assert ack["samples_ingested"] == store_b.num_samples
        assert ack["samples_shed"] == 0

    def test_collector_batches_and_flushes(self):
        with ServiceThread() as handle:
            client = ServiceClient(handle.host, handle.port, "fl")
            collector = ServiceCollector(client, batch_ticks=1000)
            self._run(collector=collector)
            # Nothing shipped yet (batch_ticks larger than the run).
            assert client.published_samples == 0
            ack = collector.close()
        assert ack["samples_ingested"] == collector.store.num_samples
        assert ack["samples_ingested"] > 0

    def test_batch_ticks_validated(self):
        with ServiceThread() as handle:
            client = ServiceClient(handle.host, handle.port, "bt")
            with pytest.raises(ConfigurationError):
                ServiceCollector(client, batch_ticks=0)
            client.close()


class TestLoadHarness:
    SPEC = LoadSpec(
        name="test 2x3",
        tenants=2,
        nodes_per_tenant=3,
        channels_per_node=1,
        rate_hz=100.0,
        batch_samples=40,
        batches_per_node=3,
        queries=6,
        query_workers=2,
    )

    def test_synthetic_source_is_deterministic(self):
        a = SyntheticSource("t", 1, "p", 1000.0)
        b = SyntheticSource("t", 1, "p", 1000.0)
        assert a.batch(64) == b.batch(64)
        other = SyntheticSource("t", 2, "p", 1000.0)
        assert a.batch(64) != other.batch(64)

    def test_synthetic_source_energy_is_cumulative(self):
        src = SyntheticSource("t", 0, "p", 1000.0)
        first, second = src.batch(32), src.batch(32)
        joules = first["joules"] + second["joules"]
        assert joules == sorted(joules)
        assert second["t"][0] > first["t"][-1] - 1e-12

    def test_run_load_accounting(self):
        report = run_load(self.SPEC)
        assert report.accounting_identity_holds
        assert report.memory_within_cap
        assert report.ingested_samples == self.SPEC.total_samples
        assert report.shed_samples == 0
        assert report.queries_served > 0
        assert report.samples_per_sec is None  # no timer injected

    def test_run_load_deterministic_text(self):
        first = run_load(self.SPEC).deterministic_text()
        second = run_load(self.SPEC).deterministic_text()
        assert first == second
        assert "accounting identity: True" in first
