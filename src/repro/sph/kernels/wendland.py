"""The Wendland C2 kernel (Wendland 1995; Dehnen & Aly 2012).

In 3D with compact support ``2h``::

    W(r, h) = (21 / (16 pi h^3)) * (1 - q/2)^4 (2q + 1),   q = r/h in [0, 2]

Wendland kernels resist the pairing instability at large neighbour counts
(exactly the ~100-neighbour regime SPH-EXA runs in), which is why modern
SPH codes offer them alongside the cubic spline.  The class is interface-
compatible with :class:`~repro.sph.kernels.cubic_spline.CubicSplineKernel`,
so every physics kernel accepts it via its ``kernel=`` parameter.
"""

from __future__ import annotations

import numpy as np

_SIGMA_3D = 21.0 / (16.0 * np.pi)

SUPPORT_RADIUS = 2.0


class WendlandC2Kernel:
    """Vectorized 3D Wendland C2 kernel."""

    support = SUPPORT_RADIUS

    @staticmethod
    def w(q: np.ndarray) -> np.ndarray:
        """Dimensionless kernel shape ``w(q)``."""
        q = np.asarray(q, dtype=np.float64)
        out = np.zeros_like(q)
        inside = q < 2.0
        qi = q[inside]
        out[inside] = (1.0 - 0.5 * qi) ** 4 * (2.0 * qi + 1.0)
        return out

    @staticmethod
    def dw(q: np.ndarray) -> np.ndarray:
        """Dimensionless shape derivative ``dw/dq``."""
        q = np.asarray(q, dtype=np.float64)
        out = np.zeros_like(q)
        inside = q < 2.0
        qi = q[inside]
        # d/dq [(1 - q/2)^4 (2q + 1)] = -5 q (1 - q/2)^3
        out[inside] = -5.0 * qi * (1.0 - 0.5 * qi) ** 3
        return out

    @classmethod
    def value(cls, r: np.ndarray, h: np.ndarray) -> np.ndarray:
        """``W(r, h)`` with full dimensional normalization."""
        h = np.asarray(h, dtype=np.float64)
        q = np.asarray(r, dtype=np.float64) / h
        return _SIGMA_3D / h**3 * cls.w(q)

    @classmethod
    def grad_r(cls, r: np.ndarray, h: np.ndarray) -> np.ndarray:
        """Scalar radial gradient ``dW/dr``."""
        h = np.asarray(h, dtype=np.float64)
        q = np.asarray(r, dtype=np.float64) / h
        return _SIGMA_3D / h**4 * cls.dw(q)
