"""Tests for the command-line interface (reduced step counts)."""

import pytest

from repro.cli import main


class TestStaticCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "LUMI-G" in out
        assert "miniHPC" in out

    def test_backends(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out.split()
        assert {"cray", "nvml", "rapl", "rocm", "dummy"} <= set(out)

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_no_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestExperimentCommands:
    def test_fig1(self, capsys):
        code = main(
            ["fig1", "--systems", "CSCS-A100", "--cards", "8", "--steps", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PMT/Slurm" in out
        assert "CSCS-A100" in out

    def test_fig2(self, capsys):
        assert main(["fig2", "--cards", "8", "--steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "LUMI-Turb" in out
        assert "GPU" in out

    def test_fig3(self, capsys):
        assert main(["fig3", "--cards", "8", "--steps", "2", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "MomentumEnergy" in out

    def test_fig4(self, capsys):
        code = main(
            [
                "fig4", "--sides", "200", "--freqs", "1410", "1005",
                "--steps", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "200^3" in out
        assert "1.000" in out

    def test_fig5(self, capsys):
        code = main(["fig5", "--freqs", "1410", "1005", "--steps", "3"])
        assert code == 0
        assert "DomainDecompAndSync" in capsys.readouterr().out

    def test_report_writes_measurements(self, capsys, tmp_path):
        out_file = tmp_path / "run.json"
        code = main(
            [
                "report", "--system", "CSCS-A100", "--cards", "8",
                "--steps", "3", "--out", str(out_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ConsumedEnergy" in out
        assert "PMT/Slurm" in out
        assert out_file.exists()
        from repro.instrumentation import RunMeasurements

        run = RunMeasurements.read(out_file)
        assert run.system_name == "CSCS-A100"

    def test_tune(self, capsys):
        code = main(
            ["tune", "--freqs", "1410", "1005", "--steps", "5", "--side", "300"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "EDP vs baseline" in out

    def test_invalid_card_count_reports_error(self, capsys):
        code = main(["fig1", "--systems", "LUMI-G", "--cards", "6", "--steps", "1"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_compare(self, capsys):
        code = main(
            [
                "compare", "--system-a", "CSCS-A100", "--system-b", "LUMI-G",
                "--cards", "8", "--steps", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Optimization targets" in out
        assert "MomentumEnergy" in out
