"""Background PMT sampling (the toolkit's dump-thread equivalent).

The real PMT can spawn a measurement thread that samples the meter at a
fixed interval and appends ``timestamp joules watts`` lines to a dump file
for post-hoc analysis.  Under the virtual clock there are no threads; the
sampler instead registers a clock listener and takes a sample whenever
simulated time crosses a sampling boundary.  Because hardware state changes
only at phase boundaries (which advance the clock), listener-driven
sampling observes exactly what a free-running thread would.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path

from repro.errors import MeasurementError
from repro.pmt.base import PMT


@dataclass(frozen=True)
class SampleRow:
    """One dump line: the meter state at a sampling boundary."""

    timestamp: float
    joules: float
    watts: float


class PmtSampler:
    """Periodic sampler over one PMT instance.

    Parameters
    ----------
    meter:
        The PMT instance to sample.
    interval_s:
        Sampling period in (simulated) seconds.
    """

    def __init__(self, meter: PMT, interval_s: float = 1.0) -> None:
        if interval_s <= 0:
            raise MeasurementError("sampler interval must be positive")
        self.meter = meter
        self.interval_s = float(interval_s)
        self.rows: list[SampleRow] = []
        self._running = False
        self._next_sample_t = 0.0
        meter.clock.on_advance(self._on_advance)

    def start(self) -> None:
        """Begin sampling; the first sample is taken immediately."""
        if self._running:
            raise MeasurementError("sampler already running")
        self._running = True
        self._take_sample()
        self._next_sample_t = self.meter.clock.now + self.interval_s

    def stop(self) -> None:
        """Stop sampling; a final sample is taken at stop time."""
        if not self._running:
            raise MeasurementError("sampler is not running")
        self._take_sample()
        self._running = False

    def _take_sample(self) -> None:
        state = self.meter.read()
        self.rows.append(
            SampleRow(
                timestamp=self.meter.clock.now,
                joules=state.joules,
                watts=state.watts,
            )
        )

    def _on_advance(self, now: float) -> None:
        if not self._running:
            return
        # Catch up on every boundary the advance crossed (coarse phases can
        # skip many sampling intervals at once).
        while self._next_sample_t <= now:
            self._take_sample()
            self._next_sample_t += self.interval_s

    # -- output ---------------------------------------------------------------

    def dump_lines(self) -> list[str]:
        """Dump-file lines in the toolkit's ``timestamp joules watts`` format."""
        lines = ["# timestamp_s joules watts"]
        lines += [
            f"{row.timestamp:.6f} {row.joules:.3f} {row.watts:.3f}"
            for row in self.rows
        ]
        return lines

    def write(self, path: str | Path) -> None:
        """Write the dump file."""
        Path(path).write_text("\n".join(self.dump_lines()) + "\n")
