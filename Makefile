PYTHON ?= python
PYTEST := PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test bench bench-smoke bench-campaign bench-federation bench-faults bench-timeseries bench-governor serve-smoke audit

# Tier-1: the full unit/integration/property suite.
test:
	$(PYTEST) -x -q

# The full benchmark harness (regenerates every table/figure).
bench:
	$(PYTEST) benchmarks -q

# CI-sized benchmark subset: only the *smoke* variants, which finish in
# seconds and still assert each benchmark's qualitative shape.  A
# collection guard in benchmarks/conftest.py fails this target if any
# bench_*.py contributes zero smoke tests, so new benchmarks cannot
# silently drop out of CI coverage.  Smoke results are committed under
# benchmarks/results/*_smoke.txt and must regenerate byte-identically
# (the CI determinism job diffs them).
bench-smoke:
	$(PYTEST) benchmarks -q -k smoke

# Campaign engine smoke: cache-hit speedup and serial==sharded equality.
bench-campaign:
	$(PYTEST) benchmarks/bench_campaign.py -q

# Federated work queue: 4 workers sharing one cache drain byte-identical
# to serial, and a SIGKILLed lease holder is stolen with zero lost runs.
bench-federation:
	$(PYTEST) benchmarks/bench_federation.py -q

# The full fault-injection ablation (both systems, every fault x target).
bench-faults:
	$(PYTEST) benchmarks/bench_ablation_fault_tolerance.py -q

# Observability smoke: export a Sedov run trace, bound artifact sizes and
# event counts, check byte-identical re-export.
bench-timeseries:
	$(PYTEST) benchmarks/bench_timeseries.py -q

# Online DVFS governor: cold min-EDP beats best static on all three
# systems, power-cap compliance, strict audit — full and smoke variants.
bench-governor:
	$(PYTEST) benchmarks/bench_ext_governor.py -q

# Telemetry service smoke: a wait-mode loopback load run whose ingest
# ledger reproduces byte-for-byte, plus the scripted queue-overflow
# scenario proving sheds are accounted, never silent.
serve-smoke:
	$(PYTEST) benchmarks/bench_service.py -q -k smoke

# Energy-accounting audit: the AST lint over the source tree (exits
# non-zero on any finding) plus a strict-mode audited measurement run —
# every accounting invariant (DESIGN.md, "Audited invariants") checked
# live; the first violation raises.
audit:
	PYTHONPATH=src $(PYTHON) -m repro.audit src/repro
	PYTHONPATH=src $(PYTHON) -m repro report --system CSCS-A100 \
		--case "Subsonic Turbulence" --cards 8 --steps 10 --audit-strict
