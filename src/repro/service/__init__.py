"""Telemetry-as-a-service: multi-tenant ingest + query over tiered stores.

The subsystem splits into a synchronous deterministic core and a thin
asyncio timing layer:

* :mod:`repro.service.protocol` — length-prefixed JSON framing and batch
  validation, shared by the stream and HTTP ingest paths;
* :mod:`repro.service.tenants` — per-tenant stores, bounded write queues
  and the shed/reject accounting ledger (pure, deterministic);
* :mod:`repro.service.server` — the asyncio ingest/query/watch server
  plus :class:`ServiceThread` for embedding it in synchronous code;
* :mod:`repro.service.client` — blocking publisher sessions, the
  zero-perturbation :class:`ServiceCollector`, HTTP/SSE helpers;
* :mod:`repro.service.load` — the deterministic load harness behind the
  service benchmarks.
"""

from repro.service.client import (
    ServiceClient,
    ServiceCollector,
    http_get_json,
    http_get_text,
    http_post_json,
    endpoint_tenant,
    parse_endpoint,
    watch_sse,
)
from repro.service.load import (
    PM_COUNTERS_HZ,
    POWERSENSOR3_HZ,
    TOPOLOGY_SCALE_MATRIX,
    LoadReport,
    LoadSpec,
    SyntheticSource,
    run_load,
)
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    ProtocolError,
    encode_frame,
)
from repro.service.server import ServiceThread, TelemetryService
from repro.service.tenants import (
    IngestCounters,
    Tenant,
    TenantConfig,
    TenantRegistry,
)

__all__ = [
    "MAX_FRAME_BYTES",
    "PM_COUNTERS_HZ",
    "POWERSENSOR3_HZ",
    "PROTOCOL_VERSION",
    "TOPOLOGY_SCALE_MATRIX",
    "FrameDecoder",
    "IngestCounters",
    "LoadReport",
    "LoadSpec",
    "ProtocolError",
    "ServiceClient",
    "ServiceCollector",
    "ServiceThread",
    "SyntheticSource",
    "Tenant",
    "TenantConfig",
    "TenantRegistry",
    "TelemetryService",
    "encode_frame",
    "http_get_json",
    "http_get_text",
    "http_post_json",
    "endpoint_tenant",
    "parse_endpoint",
    "run_load",
    "watch_sse",
]
