"""Pipeline-level fault injection: break one sensor inside a live telemetry.

The wrappers in :mod:`repro.sensors.faults` operate on a single
sensor-shaped object.  This module applies them *inside* an assembled
:class:`~repro.sensors.telemetry.NodeTelemetry`, swapping the underlying
:class:`~repro.sensors.base.SampledEnergyCounter` of one named target for a
fault-wrapped one — every consumer path (virtual sysfs files, NVML-style
calls, Slurm accounting reads) then sees the fault, which is how the
fault-injection ablation exercises the full measurement stack end to end.

Targets are platform-relative:

* ``node`` — the node-level counter (pm_counters node file on Cray, the
  IPMI BMC elsewhere); this is also what Slurm accounting integrates;
* ``cpu`` — the CPU counter (pm_counters cpu file / RAPL package);
* ``memory`` — the memory counter (Cray only);
* ``gpu<K>`` — card ``K``'s counter (pm_counters ``accelK`` / NVML);
* ``rocm<K>`` — card ``K``'s ROCm hwmon register (Cray nodes only).

Injection mutates the telemetry in place and returns the fault wrapper so
tests can introspect it.  All faults are deterministic.
"""

from __future__ import annotations

from repro.errors import SensorError
from repro.sensors.faults import DropoutFault, FrozenCounterFault, GlitchFault
from repro.sensors.telemetry import NodeTelemetry

#: The supported failure modes, in the order the ablation reports them.
FAULT_KINDS = ("freeze", "dropout", "glitch")


def _swap_counter(holder, wrapper_factory):
    """Replace ``holder.counter`` with a fault wrapper around it."""
    wrapper = wrapper_factory(holder.counter)
    holder.counter = wrapper
    return wrapper


def _resolve_setter(telemetry: NodeTelemetry, target: str):
    """Return ``(get_counter, set_counter)`` for a target name."""
    pm = telemetry.pm_counters
    if target.startswith("rocm"):
        index = int(target[len("rocm"):] or 0)
        if not telemetry.rocm or index >= len(telemetry.rocm):
            raise SensorError(f"no ROCm card {index} on {telemetry.node.name}")
        holder = telemetry.rocm[index]
        return (
            lambda: holder.counter,
            lambda c: setattr(holder, "counter", c),
        )
    if target.startswith("gpu"):
        index = int(target[len("gpu"):] or 0)
        if pm is not None:
            stem = f"accel{index}"
            if stem not in pm.counters:
                raise SensorError(
                    f"no accel counter {index} on {telemetry.node.name}"
                )
            return (
                lambda: pm.counters[stem],
                lambda c: pm.counters.__setitem__(stem, c),
            )
        if not telemetry.nvml or index >= len(telemetry.nvml):
            raise SensorError(f"no NVML device {index} on {telemetry.node.name}")
        holder = telemetry.nvml[index]
        return (
            lambda: holder.counter,
            lambda c: setattr(holder, "counter", c),
        )
    if target in ("node", "cpu", "memory"):
        if pm is not None:
            stem = "" if target == "node" else target
            if stem not in pm.counters:
                raise SensorError(
                    f"no {target!r} pm_counters file on {telemetry.node.name}"
                )
            return (
                lambda: pm.counters[stem],
                lambda c: pm.counters.__setitem__(stem, c),
            )
        if target == "node":
            if telemetry.ipmi is None:
                raise SensorError(
                    f"no node-level sensor on {telemetry.node.name}"
                )
            holder = telemetry.ipmi
        elif target == "cpu":
            if telemetry.rapl is None:
                raise SensorError(f"no RAPL domain on {telemetry.node.name}")
            holder = telemetry.rapl
        else:
            raise SensorError(
                f"platform {telemetry.system.name} has no memory sensor"
            )
        return (
            lambda: holder.counter,
            lambda c: setattr(holder, "counter", c),
        )
    raise SensorError(
        f"unknown fault target {target!r}; expected node/cpu/memory/"
        "gpu<K>/rocm<K>"
    )


def inject_fault(
    telemetry: NodeTelemetry,
    kind: str,
    target: str = "gpu0",
    *,
    freeze_at: float = 10.0,
    outage_start: float = 10.0,
    outage_end: float = 25.0,
    probability: float = 0.02,
    magnitude_watts: float = 50_000.0,
    seed: int = 0,
):
    """Inject one deterministic fault into one sensor of ``telemetry``.

    Parameters
    ----------
    telemetry:
        The node telemetry to sabotage (mutated in place).
    kind:
        One of :data:`FAULT_KINDS` — ``freeze`` (counter stops at
        ``freeze_at``), ``dropout`` (reads raise inside
        ``[outage_start, outage_end)``) or ``glitch`` (deterministic wild
        power readings with the given per-read probability).
    target:
        Which sensor to break (see module docstring).

    Returns the installed fault wrapper.
    """
    if kind not in FAULT_KINDS:
        raise SensorError(
            f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
        )
    get_counter, set_counter = _resolve_setter(telemetry, target)
    inner = get_counter()
    if kind == "freeze":
        wrapper = FrozenCounterFault(inner, freeze_at=freeze_at)
    elif kind == "dropout":
        wrapper = DropoutFault(inner, outage_start, outage_end)
    else:
        wrapper = GlitchFault(
            inner,
            probability=probability,
            magnitude_watts=magnitude_watts,
            seed=seed,
        )
    set_counter(wrapper)
    return wrapper
