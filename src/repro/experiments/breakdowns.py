"""Figures 2 and 3: device and per-function energy breakdowns.

The paper's breakdown runs are the largest Figure 1 configurations: 48
cards per system (96 GCD ranks on LUMI-G, 48 ranks on CSCS-A100), 100
steps, Subsonic Turbulence at 150 M and Evrard Collapse at 80 M particles
per rank.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.breakdown import (
    DeviceBreakdown,
    FunctionRow,
    device_breakdown,
    function_breakdown,
)
from repro.config import (
    CSCS_A100,
    EVRARD_COLLAPSE,
    LUMI_G,
    SUBSONIC_TURBULENCE,
    SystemConfig,
    TestCaseConfig,
)
from repro.experiments.runner import ExperimentResult, run_scaled_experiment

#: The four (system, test case) cells of Figures 2/3.
FIGURE2_CELLS: tuple[tuple[SystemConfig, TestCaseConfig], ...] = (
    (LUMI_G, SUBSONIC_TURBULENCE),
    (LUMI_G, EVRARD_COLLAPSE),
    (CSCS_A100, SUBSONIC_TURBULENCE),
    (CSCS_A100, EVRARD_COLLAPSE),
)

#: Figure 2/3 runs use the largest Figure 1 scale.
FIGURE2_CARDS = 48


@dataclass(frozen=True)
class BreakdownCell:
    """One (system, test case) breakdown result."""

    system: SystemConfig
    test_case: TestCaseConfig
    result: ExperimentResult
    devices: DeviceBreakdown
    gpu_functions: list[FunctionRow]
    cpu_functions: list[FunctionRow]

    @property
    def label(self) -> str:
        """Short cell label, e.g. ``LUMI-Turb``."""
        case = "Turb" if self.test_case is SUBSONIC_TURBULENCE else "Evr"
        system = "LUMI" if self.system is LUMI_G else "CSCS-A100"
        return f"{system}-{case}"


def run_breakdown_cell(
    system: SystemConfig,
    test_case: TestCaseConfig,
    num_cards: int = FIGURE2_CARDS,
    num_steps: int | None = None,
    seed: int = 0,
) -> BreakdownCell:
    """Run one breakdown cell and compute its Figure 2/3 views."""
    result = run_scaled_experiment(
        system, test_case, num_cards, num_steps=num_steps, seed=seed
    )
    return BreakdownCell(
        system=system,
        test_case=test_case,
        result=result,
        devices=device_breakdown(result.run),
        gpu_functions=function_breakdown(result.run, "gpu"),
        cpu_functions=function_breakdown(result.run, "cpu"),
    )


def figure2_breakdowns(
    num_cards: int = FIGURE2_CARDS,
    num_steps: int | None = None,
    seed: int = 0,
) -> list[BreakdownCell]:
    """All four Figure 2 cells."""
    return [
        run_breakdown_cell(system, case, num_cards, num_steps, seed)
        for system, case in FIGURE2_CELLS
    ]


def figure3_breakdowns(
    num_cards: int = FIGURE2_CARDS,
    num_steps: int | None = None,
    seed: int = 0,
) -> list[BreakdownCell]:
    """Figure 3 uses the same runs as Figure 2."""
    return figure2_breakdowns(num_cards, num_steps, seed)
