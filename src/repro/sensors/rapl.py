"""Intel RAPL (Running Average Power Limit) energy counters.

RAPL exposes per-package (and DRAM) energy accumulators through powercap
sysfs files::

    /sys/class/powercap/intel-rapl:0/energy_uj
    /sys/class/powercap/intel-rapl:0/max_energy_range_uj

The counter counts *microjoules* in 15.3 uJ quanta and wraps around at
``max_energy_range_uj`` (32-bit microjoule register on classic parts, i.e.
~4295 J — at a 200 W package draw it wraps every ~21 s, so any consumer
must handle wraparound).  There is no power register: power is obtained by
differencing energy reads, which is exactly what PMT's RAPL backend does.
"""

from __future__ import annotations

from repro.errors import SensorError
from repro.hardware.cpu import CpuDevice
from repro.sensors.base import SampledEnergyCounter
from repro.sensors.sysfs import VirtualSysfs

#: RAPL energy quantum (microjoules -> joules).
RAPL_ENERGY_QUANTUM_J = 15.3e-6

#: Classic 32-bit microjoule register range, in joules.
RAPL_MAX_ENERGY_RANGE_J = (2**32 - 1) * 1e-6

#: Effective refresh period of the RAPL MSR (about 1 kHz on real parts;
#: 10 ms here keeps simulated tick buffers small without changing any
#: observable behaviour at the paper's >=100 ms measurement granularity).
RAPL_PERIOD_S = 0.01

RAPL_DIR = "/sys/class/powercap"


class RaplPackage:
    """The RAPL package-domain energy counter of one CPU socket."""

    def __init__(
        self,
        cpu: CpuDevice,
        sysfs: VirtualSysfs,
        package_index: int = 0,
        seed: int = 0,
    ) -> None:
        self.cpu = cpu
        self.package_index = package_index
        self.counter = SampledEnergyCounter(
            cpu.trace,
            refresh_period_s=RAPL_PERIOD_S,
            watts_quantum=0.1,
            energy_quantum=RAPL_ENERGY_QUANTUM_J,
            wrap_joules=RAPL_MAX_ENERGY_RANGE_J,
            seed=seed,
            # The register is mid-count at job start (it wraps every ~20 s
            # under load anyway); consumers must handle both base and wrap.
            initial_joules=(seed * 149.0 + 12.5) % RAPL_MAX_ENERGY_RANGE_J,
        )
        base = f"{RAPL_DIR}/intel-rapl:{package_index}"
        sysfs.register(
            f"{base}/energy_uj",
            lambda t: str(int(round(self.counter.read(t).joules * 1e6))),
        )
        sysfs.register(
            f"{base}/max_energy_range_uj",
            lambda t: str(int(RAPL_MAX_ENERGY_RANGE_J * 1e6)),
        )
        sysfs.register(f"{base}/name", lambda t: f"package-{package_index}")

    def energy_uj(self, t: float) -> int:
        """Current (wrapping) accumulator value in microjoules."""
        return int(round(self.counter.read(t).joules * 1e6))

    @staticmethod
    def max_safe_read_interval_s(max_power_watts: float) -> float:
        """Longest interval between two reads that provably cannot span
        more than one counter wraparound at ``max_power_watts``.

        The 32-bit microjoule register holds ~4295 J, so at a 200 W package
        draw it wraps every ~21 s: any consumer polling slower than
        ``max_energy_range / max_package_power`` can silently lose whole
        wrap periods (the two raw values are indistinguishable from a
        single-wrap interval).  Poll faster than this bound — the PMT RAPL
        backend flags reads that violate it.
        """
        if max_power_watts <= 0:
            raise SensorError("max_power_watts must be positive")
        return RAPL_MAX_ENERGY_RANGE_J / max_power_watts

    @staticmethod
    def unwrap(
        previous_uj: int,
        current_uj: int,
        *,
        elapsed_s: float | None = None,
        max_power_watts: float | None = None,
    ) -> int:
        """Microjoules elapsed between two reads, handling one wraparound.

        Two raw register values can only witness *one* wraparound: an
        interval long enough for the counter to wrap twice silently
        undercounts by a multiple of the register range.  Pass the elapsed
        time and the package's maximum plausible power to have such
        intervals rejected — a read interval is safe only while
        ``elapsed_s <= max_safe_read_interval_s(max_power_watts)``.

        A read landing *exactly* on the wrap boundary reproduces the
        previous raw value: by the register values alone, ``delta == 0``
        after one full wrap is indistinguishable from a stuck sensor (and
        used to trip the resilient ladder's stuck-counter path).  The
        interval disambiguates: ``k`` silent wraps require consuming
        ``k * max_energy_range`` joules, which at any power up to
        ``max_power_watts`` takes at least ``k * max_safe_read_interval``
        seconds — while a package drawing *any* power at all must move the
        15.3 uJ register within microseconds.  So an unchanged register
        over ``elapsed_s >= max_safe_read_interval_s`` means (at least)
        one full wrap, never a freeze; the minimum consistent history —
        exactly one wrap — is returned.  (For ``elapsed_s`` below twice
        the safe interval a single wrap is the *only* consistent history;
        beyond that the caller should flag the read suspect, as it already
        must for any over-long interval.)
        """
        max_range = int(RAPL_MAX_ENERGY_RANGE_J * 1e6)
        delta = current_uj - previous_uj
        if delta < 0:
            delta += max_range
        if elapsed_s is not None and max_power_watts is not None:
            safe = RaplPackage.max_safe_read_interval_s(max_power_watts)
            if delta == 0 and elapsed_s >= safe:
                return max_range  # exact wrap-boundary landing, not a freeze
            if elapsed_s > safe:
                raise SensorError(
                    f"RAPL read interval {elapsed_s:.1f} s may span more "
                    f"than one counter wraparound (max safe interval at "
                    f"{max_power_watts:.0f} W is {safe:.1f} s); the "
                    "unwrapped delta would silently undercount"
                )
        return delta
