"""Figure 5: per-function EDP under frequency down-scaling (450^3).

Paper shape to reproduce: the compute-bound kernels (MomentumEnergy,
IADVelocityDivCurl) do *not* benefit from reduced compute frequency,
while the less compute-bound DomainDecompAndSync improves by ~27 % and
the remaining (memory-bound) functions by up to ~20 %.
"""

from conftest import write_result

from repro.experiments.frequency import figure5_series

NUM_STEPS = 100

#: The "most time consuming functions" the paper's Figure 5 plots.
SHOWN_FUNCTIONS = (
    "MomentumEnergy",
    "IADVelocityDivCurl",
    "DomainDecompAndSync",
    "Density",
    "FindNeighbors",
    "TurbulenceDriving",
)


def bench_figure5(benchmark, results_dir):
    series = benchmark.pedantic(
        figure5_series, kwargs={"num_steps": NUM_STEPS}, rounds=1, iterations=1
    )

    freqs = sorted(series["MomentumEnergy"], reverse=True)
    lines = [
        "Normalized per-function EDP (baseline 1410 MHz), 450^3 on miniHPC",
        f"{'Function':>22} " + " ".join(f"{f:>7.0f}" for f in freqs),
    ]
    for fn in SHOWN_FUNCTIONS:
        norm = series[fn]
        lines.append(
            f"{fn:>22} " + " ".join(f"{norm[f]:>7.3f}" for f in freqs)
        )

    at_low = {fn: series[fn][1005.0] for fn in SHOWN_FUNCTIONS}
    # Compute-bound kernels do not benefit.
    assert at_low["MomentumEnergy"] > 0.93
    assert at_low["IADVelocityDivCurl"] > 0.93
    # DomainDecompAndSync sees the largest improvement, ~25-30 %.
    assert 0.62 < at_low["DomainDecompAndSync"] < 0.85
    assert at_low["DomainDecompAndSync"] < at_low["MomentumEnergy"] - 0.1
    # Remaining functions benefit by up to ~20-25 %.
    for fn in ("Density", "FindNeighbors"):
        assert 0.65 < at_low[fn] < 0.95

    lines.append("")
    lines.append(
        "Paper: MomentumEnergy / IADVelocityDivCurl flat; "
        "DomainDecompAndSync -27%; others up to -20%"
    )
    write_result(results_dir, "fig5_function_edp", "\n".join(lines))


def bench_smoke_figure5(results_dir):
    series = figure5_series(freqs_mhz=(1410.0, 1005.0), num_steps=6)

    lines = [
        "Normalized per-function EDP at 1005 MHz (baseline 1410), smoke",
    ]
    for fn in SHOWN_FUNCTIONS:
        lines.append(f"{fn:>22} {series[fn][1005.0]:>7.3f}")

    at_low = {fn: series[fn][1005.0] for fn in SHOWN_FUNCTIONS}
    # Compute-bound kernels do not benefit; DomainDecompAndSync does.
    assert at_low["MomentumEnergy"] > 0.9
    assert at_low["DomainDecompAndSync"] < at_low["MomentumEnergy"]

    write_result(results_dir, "fig5_function_edp_smoke", "\n".join(lines))
