"""Tests for the turbulence observables (Mach, spectra, density PDF)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sph import Simulation
from repro.sph.box import Box
from repro.sph.driving import TurbulenceDriver
from repro.sph.initial_conditions import make_turbulence
from repro.sph.observables import (
    density_pdf_stats,
    deposit_to_grid,
    driving_scale_dominates,
    rms_mach_number,
    velocity_power_spectrum,
)
from repro.sph.physics import ideal_gas_eos
from repro.sph.propagator import Propagator


@pytest.fixture(scope="module")
def driven_state():
    ps, box = make_turbulence(n_side=10, sound_speed=1.0, seed=51)
    driver = TurbulenceDriver(box, amplitude=2.5, seed=51)
    sim = Simulation(ps, Propagator(box, driver=driver))
    sim.run(12)
    ideal_gas_eos(ps)
    return ps, box


class TestMachNumber:
    def test_at_rest_is_zero(self):
        ps, _ = make_turbulence(n_side=5)
        ideal_gas_eos(ps)
        assert rms_mach_number(ps) == 0.0

    def test_uniform_flow(self):
        ps, _ = make_turbulence(n_side=5, sound_speed=2.0)
        ideal_gas_eos(ps)
        ps.vel[:, 0] = 1.0
        assert rms_mach_number(ps) == pytest.approx(0.5, rel=1e-6)

    def test_driven_run_is_subsonic(self, driven_state):
        ps, _ = driven_state
        mach = rms_mach_number(ps)
        assert 0.0 < mach < 1.0  # "Subsonic Turbulence"

    def test_requires_sound_speed(self):
        ps, _ = make_turbulence(n_side=4)
        ps.c[:] = 0.0
        with pytest.raises(SimulationError):
            rms_mach_number(ps)


class TestGridDeposit:
    def test_uniform_value_deposits_uniformly(self):
        ps, box = make_turbulence(n_side=8, seed=52)
        grid = deposit_to_grid(ps, box, 4, np.full(ps.n, 7.0))
        occupied = grid != 0
        assert np.allclose(grid[occupied], 7.0)

    def test_requires_periodic_box(self):
        ps, _ = make_turbulence(n_side=4)
        with pytest.raises(SimulationError):
            deposit_to_grid(
                ps, Box(length=1.0, periodic=False), 4, ps.u
            )

    def test_grid_too_small_rejected(self):
        ps, box = make_turbulence(n_side=4)
        with pytest.raises(SimulationError):
            deposit_to_grid(ps, box, 1, ps.u)


class TestPowerSpectrum:
    def test_single_mode_peaks_at_its_wavenumber(self):
        ps, box = make_turbulence(n_side=12, seed=53)
        k_in = 3
        ps.vel[:, 1] = np.sin(2 * np.pi * k_in * (ps.pos[:, 0] + 0.5))
        k, spectrum = velocity_power_spectrum(ps, box, n_grid=16)
        assert k[np.argmax(spectrum)] == pytest.approx(k_in)

    def test_rest_gas_has_zero_spectrum(self):
        ps, box = make_turbulence(n_side=8, seed=54)
        k, spectrum = velocity_power_spectrum(ps, box, n_grid=8)
        assert np.allclose(spectrum, 0.0)

    def test_driven_run_energy_at_driving_scale(self, driven_state):
        ps, box = driven_state
        k, spectrum = velocity_power_spectrum(ps, box, n_grid=16)
        assert spectrum.sum() > 0
        # The OU driver stirs k in [1, 3]; energy concentrates there.
        assert driving_scale_dominates(k, spectrum, k_drive_max=3.0)

    def test_wavenumbers_are_integers_from_one(self):
        ps, box = make_turbulence(n_side=6)
        k, spectrum = velocity_power_spectrum(ps, box, n_grid=12)
        assert k[0] == 1.0
        assert len(k) == len(spectrum) == 5


class TestDensityPdf:
    def test_uniform_gas_narrow(self):
        ps, _ = make_turbulence(n_side=8, seed=55)
        stats = density_pdf_stats(ps)
        assert stats["mean_rho"] == pytest.approx(1.0, rel=0.05)
        assert stats["sigma_s"] < 0.05  # still the (unrelaxed) lattice value

    def test_subsonic_run_stays_narrow(self, driven_state):
        ps, _ = driven_state
        stats = density_pdf_stats(ps)
        # Subsonic turbulence: weak density contrast (sigma_s << 1).
        assert stats["sigma_s"] < 0.5

    def test_invalid_density_rejected(self):
        ps, _ = make_turbulence(n_side=4)
        ps.rho[:] = 0.0
        with pytest.raises(SimulationError):
            density_pdf_stats(ps)

    def test_driving_scale_helper_edge_cases(self):
        k = np.array([1.0, 2.0, 5.0])
        assert driving_scale_dominates(k, np.array([3.0, 3.0, 1.0]))
        assert not driving_scale_dominates(k, np.array([0.1, 0.1, 9.0]))
        assert not driving_scale_dominates(k, np.zeros(3))
