"""Distributed-vs-serial equivalence: the executable proof that the
cornerstone domain decomposition and halo machinery are correct."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sph import ProfilingHooks
from repro.sph.distributed import DistributedHydro
from repro.sph.initial_conditions import make_turbulence
from repro.sph.propagator import Propagator


def make_state(seed=17, n_side=8):
    ps, box = make_turbulence(n_side=n_side, seed=seed)
    rng = np.random.default_rng(seed)
    ps.vel = rng.normal(0.0, 0.08, size=ps.vel.shape)
    return ps, box


def run_serial(steps, seed=17):
    ps, box = make_state(seed)
    prop = Propagator(box)
    hooks = ProfilingHooks()
    for _ in range(steps):
        stats = prop.step(ps, hooks)
    return ps, stats


def run_distributed(steps, n_ranks, seed=17):
    ps, box = make_state(seed)
    dist = DistributedHydro(box, n_ranks=n_ranks)
    for _ in range(steps):
        stats = dist.step(ps)
    return ps, stats, dist


class TestEquivalence:
    @pytest.mark.parametrize("n_ranks", [1, 2, 4])
    def test_single_step_matches_serial(self, n_ranks):
        serial_ps, serial_stats = run_serial(1)
        dist_ps, dist_stats, _ = run_distributed(1, n_ranks)
        # Both orderings are SFC-sorted after sync, so arrays align.
        assert np.allclose(dist_ps.pos, serial_ps.pos, rtol=1e-9, atol=1e-12)
        assert np.allclose(dist_ps.vel, serial_ps.vel, rtol=1e-9, atol=1e-12)
        assert np.allclose(dist_ps.rho, serial_ps.rho, rtol=1e-9)
        assert np.allclose(dist_ps.u, serial_ps.u, rtol=1e-8)
        assert dist_stats.dt == pytest.approx(serial_stats.dt, rel=1e-9)

    @pytest.mark.parametrize("n_ranks", [2, 4])
    def test_multi_step_matches_serial(self, n_ranks):
        serial_ps, _ = run_serial(5)
        dist_ps, _, _ = run_distributed(5, n_ranks)
        assert np.allclose(dist_ps.pos, serial_ps.pos, rtol=1e-7, atol=1e-10)
        assert np.allclose(dist_ps.rho, serial_ps.rho, rtol=1e-7)
        assert np.allclose(dist_ps.u, serial_ps.u, rtol=1e-6)

    def test_neighbor_counts_match(self):
        serial_ps, _ = run_serial(1)
        dist_ps, _, _ = run_distributed(1, 4)
        assert np.array_equal(dist_ps.nc, serial_ps.nc)

    def test_conserved_quantities_match(self):
        _, serial_stats = run_serial(3)
        _, dist_stats, _ = run_distributed(3, 4)
        assert dist_stats.totals.kinetic == pytest.approx(
            serial_stats.totals.kinetic, rel=1e-7
        )
        assert dist_stats.totals.internal == pytest.approx(
            serial_stats.totals.internal, rel=1e-7
        )

    def test_momentum_conserved_distributed(self):
        ps, box = make_state()
        p0 = ps.momentum().copy()
        dist = DistributedHydro(box, n_ranks=4)
        for _ in range(5):
            dist.step(ps)
        assert np.abs(ps.momentum() - p0).max() < 1e-10


class TestCommAccounting:
    def test_halo_counts_positive_with_multiple_ranks(self):
        _, _, dist = run_distributed(2, 4)
        for comm in dist.comm_history:
            assert sum(comm.halo_particles) > 0
            assert comm.halo_bytes > 0
            assert comm.halo_exchanges == 4  # sync, rho, p/c, iad
            assert comm.allreduce_count == 2

    def test_single_rank_has_no_halos(self):
        _, _, dist = run_distributed(1, 1)
        assert sum(dist.comm_history[0].halo_particles) == 0

    def test_more_ranks_more_halo_traffic(self):
        _, _, two = run_distributed(1, 2)
        _, _, four = run_distributed(1, 4)
        assert (
            sum(four.comm_history[0].halo_particles)
            > sum(two.comm_history[0].halo_particles)
        )

    def test_hooks_cover_distributed_functions(self):
        ps, box = make_state()
        dist = DistributedHydro(box, n_ranks=2)
        hooks = ProfilingHooks()
        dist.step(ps, hooks)
        for name in (
            "DomainDecompAndSync",
            "FindNeighbors",
            "Density",
            "MomentumEnergy",
            "Timestep",
        ):
            assert hooks.counts[name] == 1

    def test_invalid_rank_count(self):
        _, box = make_state()
        with pytest.raises(SimulationError):
            DistributedHydro(box, n_ranks=0)
