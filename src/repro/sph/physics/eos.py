"""Equation of state (the ``EquationOfState`` loop function).

Ideal gas::

    P = (gamma - 1) rho u        c = sqrt(gamma (gamma - 1) u)

Both test cases use gamma = 5/3 (monatomic gas), as in SPH-EXA.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.sph.particles import ParticleSet

DEFAULT_GAMMA = 5.0 / 3.0


def ideal_gas_eos(ps: ParticleSet, gamma: float = DEFAULT_GAMMA) -> None:
    """Fill ``ps.p`` and ``ps.c`` from density and internal energy."""
    if gamma <= 1.0:
        raise SimulationError(f"adiabatic index must exceed 1, got {gamma!r}")
    ps.p = (gamma - 1.0) * ps.rho * ps.u
    ps.c = np.sqrt(gamma * (gamma - 1.0) * np.maximum(ps.u, 0.0))
