"""Cornerstone octree construction by bucketed leaf refinement.

A cornerstone tree is a sorted ``uint64`` array ``leaves`` of length
``L + 1``: leaf ``l`` is the SFC key range ``[leaves[l], leaves[l+1])``.
Invariants (Keller et al. 2023):

* ``leaves[0] == 0`` and ``leaves[-1] == 2**63`` (full key range covered);
* every leaf range is a valid octree node — its size is a power of 8 and
  its start is aligned to its size;
* after construction, every leaf holds at most ``bucket_size`` particles
  unless it is a single-key node that cannot split further.

Construction refines from the root: any over-full leaf is replaced by its
8 children, repeatedly, entirely with array operations per sweep (at most
21 sweeps — the key depth).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError

#: Exclusive upper bound of the 63-bit SFC key range.
KEY_RANGE = np.uint64(1) << np.uint64(63)


def node_aligned(start: int, size: int) -> bool:
    """Whether ``[start, start + size)`` is a valid octree node range."""
    if size <= 0:
        return False
    # size must be a power of 8: power of two with exponent divisible by 3.
    exponent = size.bit_length() - 1
    if (1 << exponent) != size or exponent % 3:
        return False
    return start % size == 0


def leaf_counts(leaves: np.ndarray, sorted_codes: np.ndarray) -> np.ndarray:
    """Particles per leaf, given SFC-sorted particle codes."""
    positions = np.searchsorted(sorted_codes, leaves, side="left")
    return np.diff(positions)


def build_cornerstone(sorted_codes: np.ndarray, bucket_size: int) -> np.ndarray:
    """Build the cornerstone leaf array for SFC-sorted particle codes."""
    if bucket_size <= 0:
        raise SimulationError("bucket_size must be positive")
    codes = np.asarray(sorted_codes, dtype=np.uint64)
    if len(codes) > 1 and np.any(codes[1:] < codes[:-1]):
        raise SimulationError("particle codes must be sorted")

    leaves = np.array([0, KEY_RANGE], dtype=np.uint64)
    for _ in range(22):  # key depth bounds the sweeps
        counts = leaf_counts(leaves, codes)
        sizes = np.diff(leaves)
        splittable = (counts > bucket_size) & (sizes >= np.uint64(8))
        if not np.any(splittable):
            break
        starts = leaves[:-1]
        pieces: list[np.ndarray] = []
        # Children of split leaves, generated in bulk: start + k * size/8.
        child_offsets = np.arange(8, dtype=np.uint64)
        split_starts = starts[splittable]
        split_sizes = sizes[splittable] // np.uint64(8)
        children = (
            split_starts[:, None] + child_offsets[None, :] * split_sizes[:, None]
        ).ravel()
        # Merge kept starts and new children, restore sorted order.
        new_starts = np.concatenate([starts[~splittable], children])
        new_starts.sort()
        leaves = np.concatenate([new_starts, [KEY_RANGE]]).astype(np.uint64)
    return leaves


def validate_cornerstone(leaves: np.ndarray) -> None:
    """Raise if ``leaves`` violates the cornerstone invariants."""
    leaves = np.asarray(leaves, dtype=np.uint64)
    if len(leaves) < 2:
        raise SimulationError("cornerstone array needs at least one leaf")
    if leaves[0] != 0 or leaves[-1] != KEY_RANGE:
        raise SimulationError("cornerstone array must cover the full key range")
    if np.any(leaves[1:] <= leaves[:-1]):
        raise SimulationError("cornerstone keys must be strictly increasing")
    for start, end in zip(leaves[:-1].tolist(), leaves[1:].tolist()):
        if not node_aligned(start, end - start):
            raise SimulationError(
                f"leaf [{start}, {end}) is not a valid octree node"
            )
