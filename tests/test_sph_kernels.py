"""Tests for the cubic-spline kernel: normalization, support, gradient."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sph.kernels import CubicSplineKernel

K = CubicSplineKernel


class TestCubicSpline:
    def test_peak_at_origin(self):
        h = np.array([1.0])
        assert K.value(np.array([0.0]), h)[0] == pytest.approx(1.0 / np.pi)

    def test_compact_support(self):
        h = np.ones(3)
        r = np.array([1.999, 2.0, 5.0])
        w = K.value(r, h)
        assert w[0] > 0
        assert w[1] == 0
        assert w[2] == 0

    def test_continuous_at_junction(self):
        """w(q) and dw(q) continuous at q = 1."""
        eps = 1e-9
        assert K.w(np.array([1 - eps]))[0] == pytest.approx(
            K.w(np.array([1 + eps]))[0], abs=1e-7
        )
        assert K.dw(np.array([1 - eps]))[0] == pytest.approx(
            K.dw(np.array([1 + eps]))[0], abs=1e-7
        )

    def test_normalization_3d(self):
        """integral of W over R^3 equals 1 (radial quadrature)."""
        for h in (0.5, 1.0, 2.0):
            r = np.linspace(0, 2 * h, 20001)
            w = K.value(r, np.full_like(r, h))
            integral = np.trapezoid(4 * np.pi * r**2 * w, r)
            assert integral == pytest.approx(1.0, rel=1e-6)

    def test_monotone_decreasing(self):
        r = np.linspace(0, 2, 500)
        w = K.value(r, np.ones_like(r))
        assert np.all(np.diff(w) <= 1e-15)

    def test_gradient_matches_finite_difference(self):
        h = 0.7
        r = np.linspace(0.05, 1.9 * h, 200)
        eps = 1e-6
        numeric = (
            K.value(r + eps, np.full_like(r, h))
            - K.value(r - eps, np.full_like(r, h))
        ) / (2 * eps)
        analytic = K.grad_r(r, np.full_like(r, h))
        assert np.allclose(analytic, numeric, rtol=1e-4, atol=1e-8)

    def test_gradient_nonpositive(self):
        r = np.linspace(0, 3, 100)
        assert np.all(K.grad_r(r, np.ones_like(r)) <= 0)

    def test_h_scaling(self):
        """W(r, h) = h^-3 W(r/h, 1)."""
        r = np.array([0.3])
        for h in (0.5, 2.0):
            scaled = K.value(r, np.array([h]))
            reference = K.value(r / h, np.array([1.0])) / h**3
            assert scaled[0] == pytest.approx(reference[0])

    @given(st.floats(min_value=0.0, max_value=5.0))
    def test_nonnegative_everywhere(self, q):
        assert K.w(np.array([q]))[0] >= 0.0

    @given(
        st.floats(min_value=0.01, max_value=3.0),
        st.floats(min_value=0.1, max_value=5.0),
    )
    def test_value_finite(self, r, h):
        w = K.value(np.array([r]), np.array([h]))
        assert np.isfinite(w[0]) and w[0] >= 0
